(* Deeper, cross-module property suites: edge cases and invariants not
   covered by the per-module basics. *)

open Test_util

let bigint_deep =
  [
    case "huge multiplication cross-check" (fun () ->
        (* (10^30 + 7)^2 = 10^60 + 14*10^30 + 49 *)
        let a = Bigint.add (Bigint.pow (Bigint.of_int 10) 30) (Bigint.of_int 7) in
        let expected =
          Bigint.add
            (Bigint.add (Bigint.pow (Bigint.of_int 10) 60)
               (Bigint.mul (Bigint.of_int 14) (Bigint.pow (Bigint.of_int 10) 30)))
            (Bigint.of_int 49)
        in
        check bigint "square" expected (Bigint.mul a a));
    case "division with huge operands" (fun () ->
        let a = Bigint.pred (Bigint.pow2 200) in
        let b = Bigint.pred (Bigint.pow2 100) in
        let q, r = Bigint.divmod a b in
        check bigint "reconstruct" a (Bigint.add (Bigint.mul q b) r);
        checkb "r < b" true (Bigint.compare r b < 0));
    case "to_float monotone on big values" (fun () ->
        checkb "2^100 < 2^101" true
          (Bigint.to_float (Bigint.pow2 100) < Bigint.to_float (Bigint.pow2 101));
        Alcotest.(check (float 1.0)) "2^53 exact" (2.0 ** 53.0)
          (Bigint.to_float (Bigint.pow2 53)));
    case "min_int handled" (fun () ->
        checks "min_int" (string_of_int min_int) (Bigint.to_string (Bigint.of_int min_int)));
    case "succ/pred around zero" (fun () ->
        check bigint "succ -1" Bigint.zero (Bigint.succ Bigint.minus_one);
        check bigint "pred 0" Bigint.minus_one (Bigint.pred Bigint.zero));
    qtest "pow agrees with repeated mul" QCheck2.Gen.(pair (int_range (-9) 9) (int_range 0 12))
      (fun (b, e) ->
        let rec naive acc i = if i = 0 then acc else naive (Bigint.mul acc (Bigint.of_int b)) (i - 1) in
        Bigint.equal (Bigint.pow (Bigint.of_int b) e) (naive Bigint.one e));
    qtest "num_bits consistent with compare to pow2" QCheck2.Gen.(int_range 0 200)
      (fun k ->
        let x = Bigint.pow2 k in
        Bigint.num_bits x = k + 1
        && Bigint.num_bits (Bigint.pred x) = (if k = 0 then 0 else k));
  ]

let graph_deep =
  [
    case "treewidth of larger grids" (fun () ->
        checki "2x7" 2 (Treewidth.exact (Ugraph.grid_graph 2 7));
        checki "4x4" 4 (Treewidth.exact (Ugraph.grid_graph 4 4)));
    case "disconnected graphs" (fun () ->
        let g = Ugraph.of_edges 6 [ (0, 1); (2, 3); (2, 4); (3, 4) ] in
        checki "tw = max over components" 2 (Treewidth.exact g);
        let td = Treewidth.decomposition g in
        checkb "valid despite disconnection" true (Treedec.is_valid g td));
    case "nice decomposition of a single vertex" (fun () ->
        let g = Ugraph.create 1 in
        let nice = Nice.of_treedec (Treedec.trivial g) in
        checkb "valid" true (Result.is_ok (Nice.validate g nice));
        checki "one forget" 1 (List.length (Nice.forget_nodes nice)));
    case "mmd exact on cliques" (fun () ->
        checki "K6" 5 (Treewidth.lower_bound_mmd (Ugraph.complete_graph 6)));
    qtest "exact treewidth of partial ktrees bounded by k"
      QCheck2.Gen.(pair (int_range 0 30) (int_range 1 3))
      (fun (seed, k) ->
        let g = Ugraph.random_partial_ktree ~seed 10 k 0.7 in
        Treewidth.exact g <= k);
    qtest "treewidth invariant under vertex relabeling-ish (complement twice)"
      QCheck2.Gen.(int_range 0 30)
      (fun seed ->
        let g = Ugraph.random_gnp ~seed 8 0.4 in
        Ugraph.equal g (Ugraph.complement (Ugraph.complement g)));
    qtest "path decomposition from pathwidth order is optimal"
      QCheck2.Gen.(int_range 100 160)
      (fun seed ->
        let g = Ugraph.random_gnp ~seed 7 0.45 in
        let w, order = Treewidth.pathwidth_order g in
        Treedec.width (Treedec.path_decomposition_of_order g order) = w);
  ]

let boolfun_deep =
  [
    case "max variable limit enforced" (fun () ->
        Alcotest.check_raises "raise"
          (Invalid_argument
             "Boolfun.const: 27 variables exceed the truth-table limit (26)")
          (fun () ->
            ignore (Boolfun.const (List.init 27 (fun i -> Printf.sprintf "v%02d" i)) true)));
    case "large-ish tabulation" (fun () ->
        let f = Families.parity 18 in
        checki "models" (1 lsl 17) (Boolfun.count_models_int f));
    case "cofactors of parity are parity and its negation" (fun () ->
        let f = Families.parity 4 in
        let cofs = Boolfun.cofactors_relative f [ Families.x 1 ] in
        checki "two" 2 (List.length cofs);
        checkb "complementary" true
          (match cofs with
           | [ a; b ] -> Boolfun.equal a (Boolfun.not_ b)
           | _ -> false));
    case "factor_ids consistency with factors" (fun () ->
        let f = Boolfun.random ~seed:77 (small_vars 5) in
        let y = [ "x01"; "x04" ] in
        let pairs, yvars, ids = Boolfun.factors_indexed f y in
        let yvars', ids', reps = Boolfun.factor_ids f y in
        checkb "same vars" true (yvars = yvars');
        checkb "same ids" true (ids = ids');
        checki "rep count" (List.length pairs) (Array.length reps);
        (* each rep index belongs to its factor *)
        Array.iteri
          (fun g rep -> checki (Printf.sprintf "rep %d" g) g ids.(rep))
          reps);
    qtest "xor associativity" QCheck2.Gen.(int_range 0 30) (fun seed ->
        let f = Boolfun.random ~seed (small_vars 3) in
        let g = Boolfun.random ~seed:(seed + 1) (small_vars 3) in
        let h = Boolfun.random ~seed:(seed + 2) (small_vars 3) in
        Boolfun.equal
          (Boolfun.xor_ f (Boolfun.xor_ g h))
          (Boolfun.xor_ (Boolfun.xor_ f g) h));
    qtest "count via quantification: |F| = |F|x=0| + |F|x=1|"
      QCheck2.Gen.(int_range 0 30)
      (fun seed ->
        let f = Boolfun.random ~seed (small_vars 5) in
        Boolfun.count_models_int f
        = Boolfun.count_models_int (Boolfun.restrict f [ ("x01", false) ])
          + Boolfun.count_models_int (Boolfun.restrict f [ ("x01", true) ]));
    qtest "rename then rename back" QCheck2.Gen.(int_range 0 30) (fun seed ->
        let f = Boolfun.random ~seed (small_vars 4) in
        let g = Boolfun.rename f [ ("x01", "zz"); ("x03", "aa") ] in
        let h = Boolfun.rename g [ ("zz", "x01"); ("aa", "x03") ] in
        Boolfun.equal_strict f h);
    qtest "factors of factors: nested partition refines"
      QCheck2.Gen.(int_range 0 20)
      (fun seed ->
        (* |factors(F, Y)| <= |factors(F, Y')| * 2^{|Y \ Y'|} for Y' ⊆ Y
           is false in general, but |factors(F, Y)| <= 2^|Y| always. *)
        let f = Boolfun.random ~seed (small_vars 5) in
        Boolfun.num_factors f [ "x01"; "x02" ] <= 4
        && Boolfun.num_factors f [ "x01" ] <= 2);
  ]

let circuit_deep =
  [
    case "deeply nested parse" (fun () ->
        let depth = 200 in
        let s =
          String.concat "" (List.init depth (fun _ -> "(not "))
          ^ "x"
          ^ String.make depth ')'
        in
        let c = Circuit.of_string s in
        checkb "negation chain collapses semantically" true
          (Boolfun.equal (Circuit.to_boolfun c)
             (if depth mod 2 = 0 then Boolfun.var "x"
              else Boolfun.not_ (Boolfun.var "x"))));
    case "of_gates validation" (fun () ->
        Alcotest.check_raises "forward wire"
          (Invalid_argument "Circuit.of_gates: wire violates topological order")
          (fun () -> ignore (Circuit.of_gates [| Circuit.Not 0 |] 0));
        Alcotest.check_raises "bad output"
          (Invalid_argument "Circuit.of_gates: bad output") (fun () ->
            ignore (Circuit.of_gates [| Circuit.Var "x" |] 3)));
    case "fanout counts" (fun () ->
        let c = Circuit.of_string "(and x (or x y))" in
        let counts = Circuit.fanout_counts c in
        (* gate 0 = x used by both or and and *)
        checki "x fanout" 2 counts.(0));
    case "tseitin clause shapes" (fun () ->
        let c = Circuit.of_string "(and x y)" in
        let cnf = Tseitin.transform c in
        (* AND of 2: 2 implication clauses + 1 completeness + 1 output unit *)
        checki "clauses" 4 (List.length cnf.Tseitin.clauses));
    qtest "dimacs roundtrip through named clauses" QCheck2.Gen.(int_range 0 30)
      (fun seed ->
        let st = Random.State.make [| seed |] in
        let clause () =
          List.init (1 + Random.State.int st 3) (fun _ ->
              (Printf.sprintf "v%d" (Random.State.int st 4), Random.State.bool st))
        in
        let clauses = List.init (1 + Random.State.int st 4) (fun _ -> clause ()) in
        let d, name = Dimacs.of_clauses clauses in
        let renamed =
          List.map
            (List.map (fun l -> (name (abs l), l > 0)))
            d.Dimacs.clauses
        in
        Boolfun.equal
          (Circuit.to_boolfun (Circuit.of_cnf clauses))
          (Circuit.to_boolfun (Circuit.of_cnf renamed)));
    qtest "nnf size at most doubles" QCheck2.Gen.(int_range 0 40) (fun seed ->
        let c = Generators.random_formula ~seed ~vars:4 ~depth:5 in
        Circuit.size (Circuit.to_nnf c) <= (2 * Circuit.size c) + 2);
  ]

let sdd_deep =
  [
    case "condition to a constant" (fun () ->
        let m = Sdd.manager (Vtree.balanced [ "x"; "y" ]) in
        let f = Sdd.conjoin m (Sdd.literal m "x" true) (Sdd.literal m "y" true) in
        let g = Sdd.condition m (Sdd.condition m f "x" true) "y" true in
        checkb "T" true (Sdd.is_true m g);
        checkb "F" true (Sdd.is_false m (Sdd.condition m f "x" false)));
    case "width profile sums to size" (fun () ->
        let f = Boolfun.random ~seed:3 (small_vars 5) in
        let m = Sdd.manager (Vtree.balanced (small_vars 5)) in
        let node = Compile.sdd_of_boolfun m f in
        let total =
          List.fold_left (fun acc (_, c) -> acc + c) 0 (Sdd.width_profile m node)
        in
        checki "sum = size" (Sdd.size m node) total);
    case "decision constructor rejects leaves" (fun () ->
        let m = Sdd.manager (Vtree.balanced [ "x"; "y" ]) in
        Alcotest.check_raises "raise"
          (Invalid_argument "Sdd.decision: leaf vtree node") (fun () ->
            ignore
              (Sdd.decision m
                 (Vtree.leaf_of_var (Sdd.vtree m) "x")
                 [ (Sdd.true_ m, Sdd.true_ m) ])));
    case "trusted decision builds canonical nodes" (fun () ->
        let m = Sdd.manager (Vtree.balanced [ "x"; "y" ]) in
        let vt = Sdd.vtree m in
        let x = Sdd.literal m "x" true in
        let y = Sdd.literal m "y" true in
        let via_decision =
          Sdd.decision m (Vtree.root vt)
            [ (x, y); (Sdd.negate m x, Sdd.false_ m) ]
        in
        checkb "same as apply" true (Sdd.equal via_decision (Sdd.conjoin m x y)));
    qtest "conjoin/disjoin absorption" QCheck2.Gen.(int_range 0 25) (fun seed ->
        let m = Sdd.manager (Vtree.random ~seed:(seed + 3) (small_vars 4)) in
        let f = Compile.sdd_of_boolfun m (Boolfun.random ~seed (small_vars 4)) in
        let g = Compile.sdd_of_boolfun m (Boolfun.random ~seed:(seed + 50) (small_vars 4)) in
        Sdd.equal f (Sdd.conjoin m f (Sdd.disjoin m f g))
        && Sdd.equal f (Sdd.disjoin m f (Sdd.conjoin m f g)));
    qtest "condition commutes with semantics" QCheck2.Gen.(int_range 0 25)
      (fun seed ->
        let f = Boolfun.random ~seed (small_vars 4) in
        let m = Sdd.manager (Vtree.random ~seed:(seed + 8) (small_vars 4)) in
        let node = Compile.sdd_of_boolfun m f in
        let c = Sdd.condition m node "x02" false in
        Boolfun.equal
          (Sdd.to_boolfun m c)
          (Boolfun.lift (Boolfun.restrict f [ ("x02", false) ]) (small_vars 4)));
    qtest "model_count of negation complements" QCheck2.Gen.(int_range 0 25)
      (fun seed ->
        let f = Boolfun.random ~seed (small_vars 5) in
        let m = Sdd.manager (Vtree.balanced (small_vars 5)) in
        let node = Compile.sdd_of_boolfun m f in
        Bigint.equal
          (Bigint.add (Sdd.model_count m node) (Sdd.model_count m (Sdd.negate m node)))
          (Bigint.pow2 5));
  ]

let bdd_deep =
  [
    case "parity OBDD size linear" (fun () ->
        List.iter
          (fun n ->
            let m = Bdd.manager (Families.xs n) in
            let node = Bdd.of_boolfun m (Families.parity n) in
            checki (Printf.sprintf "n=%d" n) (2 * n - 1) (Bdd.size m node))
          [ 3; 5; 8 ]);
    case "majority OBDD quadratic-ish" (fun () ->
        let m = Bdd.manager (Families.xs 9) in
        let node = Bdd.of_boolfun m (Families.majority 9) in
        checkb "quadratic band" true
          (Bdd.size m node >= 9 && Bdd.size m node <= 9 * 9));
    qtest "restrict then exists identity: exists x f = f when x unused"
      QCheck2.Gen.(int_range 0 30)
      (fun seed ->
        let m = Bdd.manager (small_vars 5) in
        let f = Bdd.of_boolfun m (Boolfun.random ~seed (small_vars 4)) in
        (* x05 not in f's support *)
        Bdd.equal f (Bdd.exists_ m "x05" f));
    qtest "level profile sums to size" QCheck2.Gen.(int_range 0 30) (fun seed ->
        let m = Bdd.manager (small_vars 5) in
        let node = Bdd.of_boolfun m (Boolfun.random ~seed (small_vars 5)) in
        List.fold_left (fun acc (_, c) -> acc + c) 0 (Bdd.level_profile m node)
        = Bdd.size m node);
    qtest "obdd of lineage equals brute lineage" QCheck2.Gen.(int_range 1 2)
      (fun n ->
        let db = Pdb.complete_rst n in
        let q = Ucq.of_string "R(x), S(x,y)" in
        let vars = Lineage.variables db in
        let m = Bdd.manager vars in
        let node = Bdd.compile_circuit m (Lineage.circuit q db) in
        Boolfun.equal (Bdd.to_boolfun m node) (Lineage.brute_force q db));
  ]

let comm_deep =
  [
    case "rank subadditive under stacking" (fun () ->
        let a = [| [| 1; 0 |]; [| 0; 1 |] |] in
        checki "rank 2" 2 (Comm.rank a));
    case "equality vs inequality matrices" (fun () ->
        (* EQ_n matrix is a permutation (identity): full rank. *)
        checki "EQ_2" 4 (Comm.cm_rank (Families.equality 2) (Families.xs 2) (Families.ys 2));
        (* parity's communication matrix has rank 2 under any split. *)
        let p = Families.parity 4 in
        checki "parity rank" 2
          (Comm.cm_rank p [ Families.x 1; Families.x 2 ] [ Families.x 3; Families.x 4 ]));
    qtest "rank invariant under row scaling by -1" QCheck2.Gen.(int_range 0 30)
      (fun seed ->
        let st = Random.State.make [| seed |] in
        let m = Array.init 5 (fun _ -> Array.init 5 (fun _ -> Random.State.int st 3 - 1)) in
        let m' = Array.map (Array.map (fun x -> -x)) m in
        Comm.rank m = Comm.rank m');
    qtest "rank bounded by number of distinct rows" QCheck2.Gen.(int_range 0 40)
      (fun seed ->
        let f = Boolfun.random ~seed (small_vars 4) in
        let mat = Comm.matrix f [ "x01"; "x02" ] [ "x03"; "x04" ] in
        let distinct =
          List.length (List.sort_uniq compare (Array.to_list (Array.map Array.to_list mat)))
        in
        Comm.rank mat <= distinct);
    qtest "theorem 2 consistent with factor counts"
      QCheck2.Gen.(int_range 0 30)
      (fun seed ->
        (* rank <= min(|factors(F,Y)|, |factors(F,Y')|)  — each factor
           class gives identical matrix rows. *)
        let f = Boolfun.random ~seed (small_vars 4) in
        let y = [ "x01"; "x02" ] in
        let rank = Comm.theorem2_bound f y in
        rank <= Boolfun.num_factors f y);
  ]

let core_deep =
  [
    case "fw on a vtree with all dummies but one" (fun () ->
        let f = Boolfun.var "x" in
        let vt = Vtree.balanced [ "a"; "b"; "x" ] in
        checki "fw" 2 (Factor_width.fw f vt));
    case "cnnf of a single variable" (fun () ->
        let f = Boolfun.var "x" in
        let r = Compile.cnnf f (Vtree.right_linear [ "x" ]) in
        check boolfun "computes x" f (Circuit.to_boolfun r.Compile.circuit));
    case "sdw of constant-ish functions" (fun () ->
        let vt = Vtree.balanced (small_vars 3) in
        checki "const true" 0 (Compile.sdw (Boolfun.const (small_vars 3) true) vt);
        checki "literal" 0 (Compile.sdw (Boolfun.var "x01") vt));
    case "fiw_min at most fw_min squared" (fun () ->
        let f = Families.majority 3 in
        let fw, _ = Factor_width.fw_min f in
        let fiw, _ = Compile.fiw_min f in
        checkb "fiw_min <= fw_min^2-ish" true (fiw <= fw * fw));
    qtest "sdw_min <= sdw on any specific vtree" QCheck2.Gen.(int_range 0 10)
      (fun seed ->
        let f = Boolfun.random ~seed (small_vars 4) in
        let w, _ = Compile.sdw_min f in
        w <= Compile.sdw f (Vtree.balanced (small_vars 4)));
    qtest "cnnf counting via Snnf equals boolfun counting"
      QCheck2.Gen.(int_range 100 130)
      (fun seed ->
        let f = Boolfun.random ~seed (small_vars 5) in
        let vt = Vtree.random ~seed:(seed + 17) (small_vars 5) in
        let r = Compile.cnnf f vt in
        let missing = 5 - List.length (Circuit.variables r.Compile.circuit) in
        Bigint.to_int_exn
          (Bigint.mul (Bigint.pow2 missing) (Snnf.model_count r.Compile.circuit))
        = Boolfun.count_models_int f);
    qtest "factor-based and apply-based compilers agree on chain slices"
      QCheck2.Gen.(int_range 3 8)
      (fun n ->
        let c = Generators.chain_implications n in
        let vt, _ = Lemma1.vtree_of_circuit c in
        let m = Sdd.manager vt in
        Sdd.equal
          (Compile.sdd_of_boolfun m (Circuit.to_boolfun c))
          (Sdd.compile_circuit m c));
  ]

let pdb_deep =
  [
    case "query with repeated variable in one atom" (fun () ->
        let q = Ucq.of_string "S(x,x)" in
        let db =
          Pdb.uniform (Ratio.of_ints 1 2)
            [ Pdb.tuple "S" [ "1"; "1" ]; Pdb.tuple "S" [ "1"; "2" ] ]
        in
        check boolfun "diagonal only"
          (Boolfun.lift (Boolfun.var "S(1,1)") (Lineage.variables db))
          (Lineage.boolfun q db));
    case "empty-database lineage is false" (fun () ->
        let db = Pdb.make [] in
        let q = Ucq.of_string "R(x)" in
        check boolfun "ff" Boolfun.ff (Circuit.to_boolfun (Lineage.circuit q db)));
    case "probability of impossible and certain queries" (fun () ->
        let db = Pdb.make [ (Pdb.tuple "R" [ "1" ], Ratio.one) ] in
        check ratio "certain" Ratio.one (Prob.brute (Ucq.of_string "R(x)") db);
        check ratio "impossible" Ratio.zero (Prob.brute (Ucq.of_string "T(x)") db));
    case "hierarchical order on union falls back gracefully" (fun () ->
        let db = Pdb.complete_rst 2 in
        let q = Ucq.of_string "R(x) | T(y)" in
        let p, _ = Prob.via_obdd_exn q db in
        check ratio "matches brute" (Prob.brute q db) p);
    qtest "lineage variable monotonicity: adding facts grows models"
      QCheck2.Gen.(int_range 1 2)
      (fun n ->
        let db = Pdb.complete_rst n in
        let q = Ucq.of_string "R(x), S(x,y)" in
        let f = Lineage.boolfun q db in
        (* monotone: flipping any variable 0->1 cannot destroy a model *)
        let vars = Boolfun.variables f in
        List.for_all
          (fun m ->
            Boolfun.eval f m = false
            || List.for_all
                 (fun v -> Boolfun.eval f (Boolfun.Smap.add v true m))
                 vars)
          (Boolfun.models f));
    qtest "via_sdd equals via_obdd on random subdatabases"
      QCheck2.Gen.(int_range 0 12)
      (fun seed ->
        let st = Random.State.make [| seed; 777 |] in
        let facts =
          List.filter (fun _ -> Random.State.bool st) (Pdb.complete_rst 2).Pdb.facts
        in
        facts = []
        ||
        let db = Pdb.uniform (Ratio.of_ints 1 3) facts in
        let q = Ucq.of_string "R(x), S(x,y), T(y)" in
        let a, _ = Prob.via_obdd_exn q db in
        let b, _ = Prob.via_sdd_exn q db in
        Ratio.equal a b);
  ]


let bb_suite =
  [
    case "bb agrees with DP on small graphs" (fun () ->
        List.iter
          (fun g ->
            Alcotest.(check (option int)) "agree"
              (Some (Treewidth.exact g))
              (Treewidth.exact_bb g))
          [
            Ugraph.path_graph 8; Ugraph.cycle_graph 9; Ugraph.grid_graph 3 4;
            Ugraph.complete_graph 7; Ugraph.random_gnp ~seed:5 12 0.3;
            Ugraph.star_graph 9; Ugraph.create 0;
          ]);
    case "bb handles mid-size structured graphs" (fun () ->
        Alcotest.(check (option int)) "grid 3x8" (Some 3)
          (Treewidth.exact_bb (Ugraph.grid_graph 3 8));
        Alcotest.(check (option int)) "cycle 30" (Some 2)
          (Treewidth.exact_bb (Ugraph.cycle_graph 30));
        Alcotest.(check (option int)) "tree 30" (Some 1)
          (Treewidth.exact_bb (Ugraph.random_tree ~seed:9 30)));
    case "bb exact on a ladder circuit graph" (fun () ->
        let c = Generators.ladder ~tracks:2 3 in
        let g = Circuit.underlying_graph c in
        match Treewidth.exact_bb ~node_budget:2_000_000 g with
        | Some w ->
          let ub, _ = Treewidth.upper_bound g in
          checkb "le ub" true (w <= ub);
          checkb "ge mmd" true (w >= Treewidth.lower_bound_mmd g)
        | None -> () (* budget exhausted is acceptable *));
    case "budget exhaustion returns None" (fun () ->
        let g = Ugraph.random_gnp ~seed:3 30 0.4 in
        Alcotest.(check (option int)) "none" None (Treewidth.exact_bb ~node_budget:50 g));
    qtest "bb matches DP on random graphs" QCheck2.Gen.(int_range 0 40)
      (fun seed ->
        let g = Ugraph.random_gnp ~seed 11 0.35 in
        Treewidth.exact_bb g = Some (Treewidth.exact g));
  ]

let suites =
  [
    ("bigint_deep", bigint_deep);
    ("graph_deep", graph_deep);
    ("boolfun_deep", boolfun_deep);
    ("circuit_deep", circuit_deep);
    ("sdd_deep", sdd_deep);
    ("bdd_deep", bdd_deep);
    ("comm_deep", comm_deep);
    ("core_deep", core_deep);
    ("pdb_deep", pdb_deep);
    ("treewidth_bb", bb_suite);
  ]
