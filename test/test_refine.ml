(* Properties of the incremental factor analysis and the
   domain-parallel vtree search.

   The refinement in [Factor_width.analyze] derives every node's factor
   partition from its parent's by integer-array refinement, touching the
   truth table only at the root.  The contract is exact: for every node
   the (yvars, ids, rep_idx) triple must be bit-identical to the naive
   per-node [Boolfun.factor_ids], which re-scans the table and numbers
   factors in first-seen order.  The parallel search must likewise be
   indistinguishable from the sequential one. *)

open Test_util

let check_int_array = Alcotest.(check (array int))
let check_str_array = Alcotest.(check (array string))

(* Compare the incremental analysis against naive [factor_ids] at every
   node of [vt]. *)
let check_analysis_matches ~what f vt =
  let analysis = Factor_width.analyze f vt in
  List.iter
    (fun v ->
      let nf = Factor_width.at analysis v in
      let yvars, ids, reps = Boolfun.factor_ids f (Vtree.vars_below vt v) in
      let tag s = Printf.sprintf "%s node %d %s" what v s in
      check_str_array (tag "yvars") yvars nf.Factor_width.yvars;
      check_int_array (tag "ids") ids nf.Factor_width.ids;
      check_int_array (tag "reps") reps nf.Factor_width.rep_idx;
      checki (tag "count") (Array.length reps) nf.Factor_width.count)
    (Vtree.nodes vt)

(* Vtrees exercised per function: linear, balanced, random shapes, plus
   shapes over a strict superset of the function's variables (dummy
   leaves make Y_v a strict subset of vars_below). *)
let vtrees_for vars seed =
  let extra = vars @ [ "z98"; "z99" ] in
  [
    Vtree.right_linear vars;
    Vtree.left_linear vars;
    Vtree.balanced vars;
    Vtree.random ~seed vars;
    Vtree.random ~seed:(seed + 17) vars;
    Vtree.balanced extra;
    Vtree.random ~seed extra;
  ]

let refine_matches_naive () =
  (* ~200 (function, vtree) pairs with 4-8 variables. *)
  List.iteri
    (fun i f ->
      let vt_list = vtrees_for (Boolfun.variables f) (100 + i) in
      List.iter (check_analysis_matches ~what:(Printf.sprintf "f%d" i) f)
        vt_list)
    (random_functions ~vars:4 ~count:10
    @ random_functions ~vars:5 ~count:8
    @ random_functions ~vars:6 ~count:6
    @ random_functions ~vars:7 ~count:3
    @ random_functions ~vars:8 ~count:2)

let refine_matches_structured () =
  let vars = small_vars 6 in
  let parity =
    Boolfun.of_fun vars (fun a ->
        Boolfun.Smap.fold (fun _ b acc -> if b then not acc else acc) a false)
  in
  let fns =
    [
      ("parity", parity);
      ("true", Boolfun.const vars true);
      ("false", Boolfun.const vars false);
      ("conj", Boolfun.and_list (List.map Boolfun.var vars));
    ]
  in
  List.iter
    (fun (name, f) ->
      List.iter (check_analysis_matches ~what:name f) (vtrees_for vars 7))
    fns

(* --------------------------------------------------------------- *)
(* Parallel search = sequential search                              *)
(* --------------------------------------------------------------- *)

let parallel_best_known_matches () =
  List.iteri
    (fun i f ->
      let vt1, s1 = Vtree_search.best_known_exn ~max_steps:5 ~domains:1 f in
      let vt3, s3 = Vtree_search.best_known_exn ~max_steps:5 ~domains:3 f in
      checki (Printf.sprintf "f%d size" i) s1 s3;
      checkb (Printf.sprintf "f%d vtree" i) true (Vtree.equal vt1 vt3);
      (* Same vtree and same function: width agrees too. *)
      let width vt =
        let m = Sdd.manager vt in
        Sdd.width m (Compile.sdd_of_boolfun m f)
      in
      checki (Printf.sprintf "f%d width" i) (width vt1) (width vt3))
    (random_functions ~vars:5 ~count:3)

let parallel_minimize_matches () =
  List.iteri
    (fun i f ->
      let vt0 = Vtree.right_linear (Boolfun.variables f) in
      let score = Vtree_search.sdd_size_score f in
      let vt1, s1 = Vtree_search.minimize_exn ~max_steps:8 ~domains:1 ~score vt0 in
      let vt4, s4 = Vtree_search.minimize_exn ~max_steps:8 ~domains:4 ~score vt0 in
      checki (Printf.sprintf "f%d score" i) s1 s4;
      checkb (Printf.sprintf "f%d vtree" i) true (Vtree.equal vt1 vt4))
    (random_functions ~vars:5 ~count:3)

let env_domains_default () =
  (* default_domains is >= 1 whatever the environment says. *)
  checkb "positive" true (Vtree_search.default_domains () >= 1)

(* --------------------------------------------------------------- *)
(* Obs worker capture/absorb                                        *)
(* --------------------------------------------------------------- *)

let with_obs f =
  let was = Obs.enabled () in
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.reset ();
      Obs.set_enabled was)
    f

let worker_counters_merge () =
  with_obs @@ fun () ->
  Obs.incr ~by:2 "w.count";
  let (), cap =
    Obs.Worker.capture (fun () ->
        Obs.incr ~by:5 "w.count";
        Obs.incr "w.only";
        Obs.gauge_max "w.peak" 7)
  in
  (* Capture ran against fresh state; nothing leaked into ours yet. *)
  checki "before absorb" 2 (Obs.counter_value "w.count");
  checki "only before" 0 (Obs.counter_value "w.only");
  Obs.Worker.absorb cap;
  checki "after absorb" 7 (Obs.counter_value "w.count");
  checki "only after" 1 (Obs.counter_value "w.only");
  checkb "gauge" true (Obs.gauge_value "w.peak" = Some 7)

let worker_spans_merge () =
  with_obs @@ fun () ->
  Obs.span "outer" (fun () ->
      Obs.span "inner" (fun () -> ());
      let (), cap =
        Obs.Worker.capture (fun () -> Obs.span "inner" (fun () -> ()))
      in
      Obs.Worker.absorb cap);
  match Obs.span_roots () with
  | [ outer ] ->
    checks "outer name" "outer" outer.Obs.span;
    (match outer.Obs.children with
     | [ inner ] ->
       checks "inner name" "inner" inner.Obs.span;
       (* One sequential call + one absorbed worker call, summed. *)
       checki "inner calls" 2 inner.Obs.calls
     | l -> Alcotest.failf "expected one child span, got %d" (List.length l))
  | l -> Alcotest.failf "expected one root span, got %d" (List.length l)

let worker_across_domains () =
  with_obs @@ fun () ->
  let work () = Obs.incr ~by:3 "d.count" in
  let d = Domain.spawn (fun () -> Obs.Worker.capture work) in
  let (), cap = Domain.join d in
  checki "isolated" 0 (Obs.counter_value "d.count");
  Obs.Worker.absorb cap;
  checki "merged" 3 (Obs.counter_value "d.count")

let suites =
  [
    ( "refine factor analysis",
      [
        case "matches naive factor_ids on random corpus" refine_matches_naive;
        case "matches naive factor_ids on structured functions"
          refine_matches_structured;
      ] );
    ( "parallel vtree search",
      [
        case "best_known identical for 1 and 3 domains"
          parallel_best_known_matches;
        case "minimize identical for 1 and 4 domains"
          parallel_minimize_matches;
        case "default_domains is positive" env_domains_default;
      ] );
    ( "obs workers",
      [
        case "counters and gauges merge on absorb" worker_counters_merge;
        case "span trees graft under the open span" worker_spans_merge;
        case "capture isolates a spawned domain" worker_across_domains;
      ] );
  ]
