(* CNF preprocessing, component decomposition, and the SAT-scale
   compile_cnf path: exactness against brute-force model counts, the
   count-preservation laws, and the degraded-result contract. *)

open Test_util

(* Brute-force model count over the declared variable range (feasible
   up to ~16 variables). *)
let brute_count (d : Dimacs.t) =
  let n = d.Dimacs.num_vars in
  assert (n <= 20);
  let count = ref 0 in
  for m = 0 to (1 lsl n) - 1 do
    let sat_lit l =
      let bit = (m lsr (abs l - 1)) land 1 = 1 in
      if l > 0 then bit else not bit
    in
    if List.for_all (fun c -> List.exists sat_lit c) d.Dimacs.clauses then
      incr count
  done;
  !count

let cnf ~vars clauses = { Dimacs.num_vars = vars; clauses }

(* qcheck generator: a small CNF as (num_vars, clauses) with literals in
   ±1..vars; clauses of length 0..4, possibly duplicated/tautological. *)
let cnf_gen ~max_vars ~max_clauses =
  let open QCheck2.Gen in
  int_range 1 max_vars >>= fun vars ->
  let lit = int_range 1 vars >>= fun v -> oneofl [ v; -v ] in
  list_size (int_range 0 max_clauses) (list_size (int_range 0 4) lit)
  >>= fun clauses -> return (cnf ~vars clauses)

(* ------------------------------------------------------------------ *)
(* Preprocessing                                                       *)
(* ------------------------------------------------------------------ *)

let preprocess_tests =
  [
    case "unit chain collapses entirely" (fun () ->
        (* x1, x1→x2, ..., x4→x5: all variables forced. *)
        let d =
          cnf ~vars:5 ([ 1 ] :: List.init 4 (fun i -> [ -(i + 1); i + 2 ]))
        in
        match Cnf_preprocess.run d with
        | Unsat -> Alcotest.fail "satisfiable chain reported Unsat"
        | Simplified s ->
          checki "residual clauses" 0 (List.length s.cnf.Dimacs.clauses);
          checki "forced" 5 (List.length s.forced);
          List.iter
            (fun (_, b) -> checkb "forced true" true b)
            s.forced;
          checki "free" 0 s.free_vars;
          checkb "exact" true (Cnf_preprocess.count_exact s);
          check bigint "count" (Bigint.of_int 1)
            (Cnf_preprocess.original_count s (Bigint.of_int 1)));
    case "conflicting units are Unsat" (fun () ->
        match Cnf_preprocess.run (cnf ~vars:2 [ [ 1 ]; [ -1 ] ]) with
        | Unsat -> ()
        | Simplified _ -> Alcotest.fail "x ∧ ¬x not Unsat");
    case "empty clause is Unsat" (fun () ->
        match Cnf_preprocess.run (cnf ~vars:3 [ [ 1; 2 ]; [] ]) with
        | Unsat -> ()
        | Simplified _ -> Alcotest.fail "empty clause not Unsat");
    case "tautologies and duplicates are counted and removed" (fun () ->
        let d =
          cnf ~vars:3 [ [ 1; -1; 2 ]; [ 2; 3 ]; [ 3; 2 ]; [ 2; 2; 3 ] ]
        in
        match Cnf_preprocess.run d with
        | Unsat -> Alcotest.fail "unexpected Unsat"
        | Simplified s ->
          checki "tautologies" 1 s.removed_tautologies;
          (* [3;2] and [2;2;3] both normalize to [2;3]. *)
          checki "duplicates" 2 s.removed_duplicates;
          checki "residual" 1 (List.length s.cnf.Dimacs.clauses));
    case "pure literals only at `Sat level" (fun () ->
        (* x1 occurs only positively. *)
        let d = cnf ~vars:2 [ [ 1; 2 ]; [ 1; -2 ] ] in
        (match Cnf_preprocess.run ~level:`Count d with
         | Unsat -> Alcotest.fail "unexpected Unsat"
         | Simplified s ->
           checkb "no pures at Count" true (s.pure_eliminated = []);
           checkb "exact at Count" true (Cnf_preprocess.count_exact s));
        match Cnf_preprocess.run ~level:`Sat d with
        | Unsat -> Alcotest.fail "unexpected Unsat"
        | Simplified s ->
          checkb "pures found at Sat" true (s.pure_eliminated <> []);
          checkb "not exact" false (Cnf_preprocess.count_exact s);
          let lo, hi = Cnf_preprocess.count_bounds s (Bigint.of_int 1) in
          (* True count of (x1∨x2)(x1∨¬x2) over 2 vars is 2. *)
          checkb "lo ≤ 2" true (Bigint.compare lo (Bigint.of_int 2) <= 0);
          checkb "2 ≤ hi" true (Bigint.compare (Bigint.of_int 2) hi <= 0));
    qtest ~count:300 "Count-level preprocessing preserves the model count"
      (cnf_gen ~max_vars:6 ~max_clauses:8)
      (fun d ->
        let truth = brute_count d in
        match Cnf_preprocess.run ~level:`Count d with
        | Unsat -> truth = 0
        | Simplified s ->
          let core = Bigint.of_int (brute_count s.cnf) in
          Bigint.equal (Bigint.of_int truth)
            (Cnf_preprocess.original_count s core));
    qtest ~count:300 "Sat-level bounds bracket the true count"
      (cnf_gen ~max_vars:6 ~max_clauses:8)
      (fun d ->
        let truth = Bigint.of_int (brute_count d) in
        match Cnf_preprocess.run ~level:`Sat d with
        | Unsat -> Bigint.equal truth Bigint.zero
        | Simplified s ->
          let core = Bigint.of_int (brute_count s.cnf) in
          let lo, hi = Cnf_preprocess.count_bounds s core in
          Bigint.compare lo truth <= 0 && Bigint.compare truth hi <= 0);
  ]

(* ------------------------------------------------------------------ *)
(* Component decomposition                                             *)
(* ------------------------------------------------------------------ *)

let union_find_tests =
  let module U = Ugraph.Union_find in
  [
    case "singletons" (fun () ->
        let uf = U.create 4 in
        checki "classes" 4 (U.count uf);
        checki "groups" 4 (List.length (U.groups uf)));
    case "union merges and is idempotent" (fun () ->
        let uf = U.create 5 in
        U.union uf 0 3;
        U.union uf 3 0;
        U.union uf 1 4;
        checki "classes" 3 (U.count uf);
        checki "find join" (U.find uf 0) (U.find uf 3);
        checkb "distinct classes" true (U.find uf 0 <> U.find uf 1);
        let groups = U.groups uf in
        checkb "groups partition" true
          (List.sort compare (List.concat groups) = [ 0; 1; 2; 3; 4 ]));
    case "groups ordered by smallest member" (fun () ->
        let uf = U.create 4 in
        U.union uf 2 3;
        match U.groups uf with
        | [ [ 0 ]; [ 1 ]; [ 2; 3 ] ] -> ()
        | gs ->
          Alcotest.failf "unexpected groups: %s"
            (String.concat "|"
               (List.map
                  (fun g -> String.concat "," (List.map string_of_int g))
                  gs)));
  ]

let split_tests =
  [
    case "disjoint chains split into components" (fun () ->
        let d = cnf ~vars:6 [ [ -1; 2 ]; [ -2; 3 ]; [ -4; 5 ]; [ -5; 6 ] ] in
        let comps = Cnf_preprocess.split d in
        checki "components" 2 (List.length comps);
        List.iter
          (fun c ->
            checki "vars" 3 c.Cnf_preprocess.comp_cnf.Dimacs.num_vars;
            checki "clauses" 2
              (List.length c.Cnf_preprocess.comp_cnf.Dimacs.clauses))
          comps);
    case "empty clause rides with a component" (fun () ->
        let d = cnf ~vars:2 [ [ 1; 2 ]; [] ] in
        match Cnf_preprocess.split d with
        | [ c ] ->
          checki "brute zero" 0 (brute_count c.Cnf_preprocess.comp_cnf)
        | comps -> Alcotest.failf "expected 1 component, got %d"
                     (List.length comps));
    case "variable-free CNF" (fun () ->
        checki "no clauses" 0 (List.length (Cnf_preprocess.split (cnf ~vars:3 [])));
        match Cnf_preprocess.split (cnf ~vars:3 [ [] ]) with
        | [ c ] -> checki "vars" 0 c.Cnf_preprocess.comp_cnf.Dimacs.num_vars
        | _ -> Alcotest.fail "empty-clause bundle lost");
    qtest ~count:300 "component counts multiply to the global count"
      (cnf_gen ~max_vars:8 ~max_clauses:8)
      (fun d ->
        let comps = Cnf_preprocess.split d in
        let used = Hashtbl.create 16 in
        List.iter
          (List.iter (fun l -> Hashtbl.replace used (abs l) ()))
          d.Dimacs.clauses;
        let unused = d.Dimacs.num_vars - Hashtbl.length used in
        let product =
          List.fold_left
            (fun acc c ->
              acc * brute_count c.Cnf_preprocess.comp_cnf)
            1 comps
        in
        brute_count d = product * (1 lsl unused));
    qtest ~count:300 "split partitions used variables and all clauses"
      (cnf_gen ~max_vars:8 ~max_clauses:8)
      (fun d ->
        let comps = Cnf_preprocess.split d in
        let used = Hashtbl.create 16 in
        List.iter
          (List.iter (fun l -> Hashtbl.replace used (abs l) ()))
          d.Dimacs.clauses;
        let comp_vars =
          List.concat_map
            (fun c -> Array.to_list c.Cnf_preprocess.comp_var_of_new)
            comps
        in
        List.length comp_vars = Hashtbl.length used
        && List.for_all (Hashtbl.mem used) comp_vars
        && List.fold_left
             (fun acc c ->
               acc + List.length c.Cnf_preprocess.comp_cnf.Dimacs.clauses)
             0 comps
           = List.length d.Dimacs.clauses);
  ]

(* ------------------------------------------------------------------ *)
(* compile_cnf                                                         *)
(* ------------------------------------------------------------------ *)

let compile_ok ?budget ?preprocess ?schedule ?domains d =
  match Pipeline.compile_cnf ?budget ?preprocess ?schedule ?domains d with
  | Ok r -> r
  | Error e -> Alcotest.failf "compile_cnf: %s" (Ctwsdd_error.to_string e)

let compile_tests =
  [
    qtest ~count:150 "compile_cnf matches brute force (bags, preprocess)"
      (cnf_gen ~max_vars:8 ~max_clauses:10)
      (fun d ->
        let r = compile_ok d in
        Bigint.equal r.Pipeline.count (Bigint.of_int (brute_count d)));
    qtest ~count:100 "compile_cnf matches brute force (clauses, raw)"
      (cnf_gen ~max_vars:8 ~max_clauses:10)
      (fun d ->
        let r = compile_ok ~preprocess:false ~schedule:`Clauses d in
        Bigint.equal r.Pipeline.count (Bigint.of_int (brute_count d)));
    qtest ~count:60 "schedule and domain count do not change the count"
      (cnf_gen ~max_vars:8 ~max_clauses:10)
      (fun d ->
        let a = compile_ok ~schedule:`Bags ~domains:1 d in
        let b = compile_ok ~schedule:`Clauses ~domains:4 d in
        Bigint.equal a.Pipeline.count b.Pipeline.count);
    case "multi-chain count is the product of chain counts" (fun () ->
        (* Three disjoint 5-var implication chains: 6 models each. *)
        let chain k =
          List.init 4 (fun i -> [ -(k + i + 1); k + i + 2 ])
        in
        let d = cnf ~vars:15 (chain 0 @ chain 5 @ chain 10) in
        let r = compile_ok d in
        checki "components" 3 (List.length r.Pipeline.components);
        check bigint "6^3" (Bigint.of_int 216) r.Pipeline.count);
    case "unsat CNF yields zero and no components" (fun () ->
        let r = compile_ok (cnf ~vars:3 [ [ 1 ]; [ -1 ] ]) in
        check bigint "zero" Bigint.zero r.Pipeline.count;
        checki "components" 0 (List.length r.Pipeline.components));
    case "unsat without preprocessing" (fun () ->
        let r =
          compile_ok ~preprocess:false (cnf ~vars:2 [ [ 1; 2 ]; [] ])
        in
        check bigint "zero" Bigint.zero r.Pipeline.count);
    case "free and forced variables are folded into the count" (fun () ->
        (* v1 forced, v2..v3 constrained, v4..v5 free. *)
        let d = cnf ~vars:5 [ [ 1 ]; [ -2; 3 ] ] in
        let r = compile_ok d in
        checki "forced" 1 r.Pipeline.forced_vars;
        checki "free" 2 r.Pipeline.free_vars;
        check bigint "count" (Bigint.of_int 12) r.Pipeline.count);
    case "budget trip mid-component leaves a valid degraded result"
      (fun () ->
        (* A 12-var band under a node cap: the treedec rung trips, the
           ladder falls back, and whatever comes out must still count
           exactly. *)
        let d =
          cnf ~vars:12 (List.init 11 (fun i -> [ i + 1; -(i + 2) ]))
        in
        let truth = Bigint.of_int (brute_count d) in
        match
          Pipeline.compile_cnf
            ~budget:(Budget.create ~max_nodes:60 ())
            d
        with
        | Ok r ->
          check bigint "count still exact" truth r.Pipeline.count;
          (* degraded or not, the result must be self-consistent *)
          List.iter
            (fun c ->
              check bigint "component count"
                (Sdd.model_count c.Pipeline.k_manager c.Pipeline.k_root)
                c.Pipeline.k_count)
            r.Pipeline.components
        | Error e ->
          checkb "reasoned error" true (Ctwsdd_error.reason e <> None));
    case "hard node cap is a structured error" (fun () ->
        let d =
          cnf ~vars:12 (List.init 11 (fun i -> [ i + 1; -(i + 2) ]))
        in
        match
          Pipeline.compile_cnf ~budget:(Budget.create ~max_nodes:2 ()) d
        with
        | Ok _ -> Alcotest.fail "2-node cap cannot succeed"
        | Error e ->
          checkb "budget reason" true (Ctwsdd_error.reason e <> None));
    case "cancellation propagates" (fun () ->
        let budget = Budget.create ~cancel:(Atomic.make true) () in
        let d = cnf ~vars:4 [ [ 1; 2 ]; [ 3; 4 ] ] in
        match Pipeline.compile_cnf ~budget d with
        | Ok _ -> Alcotest.fail "cancelled compile succeeded"
        | Error e ->
          checkb "cancelled" true
            (Ctwsdd_error.reason e = Some Budget.Cancelled));
  ]

(* ------------------------------------------------------------------ *)
(* Forest composition and cross-manager import                         *)
(* ------------------------------------------------------------------ *)

let conjoin_tests =
  [
    case "of_forest offsets give each part a contiguous id range"
      (fun () ->
        let t1 = Vtree.balanced [ "a"; "b"; "c" ] in
        let t2 = Vtree.right_linear [ "d"; "e" ] in
        let t3 = Vtree.balanced [ "f" ] in
        let t, offsets = Vtree.of_forest [ t1; t2; t3 ] in
        checki "total nodes" (2 + Vtree.num_nodes t1 + Vtree.num_nodes t2
                              + Vtree.num_nodes t3)
          (Vtree.num_nodes t);
        List.iteri
          (fun i part ->
            List.iter
              (fun v ->
                if Vtree.is_leaf part v then
                  checks "leaf survives"
                    (Vtree.var_of_leaf part v)
                    (Vtree.var_of_leaf t (offsets.(i) + v)))
              (Vtree.nodes part))
          [ t1; t2; t3 ]);
    case "of_forest rejects empty and duplicate inputs" (fun () ->
        (try
           ignore (Vtree.of_forest []);
           Alcotest.fail "empty forest accepted"
         with Invalid_argument _ -> ());
        try
          ignore
            (Vtree.of_forest
               [ Vtree.balanced [ "x" ]; Vtree.balanced [ "x" ] ]);
          Alcotest.fail "duplicate variables accepted"
        with Invalid_argument _ -> ());
    case "import preserves the function across managers" (fun () ->
        let vt = Vtree.balanced (small_vars 4) in
        let src = Sdd.manager vt in
        let f =
          Sdd.disjoin src
            (Sdd.conjoin src
               (Sdd.literal src "x01" true)
               (Sdd.literal src "x02" false))
            (Sdd.literal src "x03" true)
        in
        let dst = Sdd.manager vt in
        let g = Sdd.import ~dst ~map:(fun v -> v) src f in
        checkb "same function" true
          (Boolfun.equal (Sdd.to_boolfun src f) (Sdd.to_boolfun dst g)));
    case "conjoin_components multiplies out the component counts"
      (fun () ->
        let d = cnf ~vars:6 [ [ -1; 2 ]; [ 3; 4 ]; [ -5; -6 ] ] in
        let r = compile_ok d in
        checki "components" 3 (List.length r.Pipeline.components);
        match Pipeline.conjoin_components r with
        | None -> Alcotest.fail "no conjoined SDD"
        | Some (m, root) ->
          check bigint "conjoined count matches"
            (Bigint.of_int (brute_count d))
            (Bigint.mul
               (Sdd.model_count m root)
               (Bigint.pow2 r.Pipeline.free_vars));
          checkb "valid SDD" true (Sdd.validate m root = Ok ()));
    case "conjoin_components on an unsat result is None" (fun () ->
        let r = compile_ok (cnf ~vars:2 [ [ 1 ]; [ -1 ] ]) in
        checkb "none" true (Pipeline.conjoin_components r = None));
  ]

(* ------------------------------------------------------------------ *)
(* DIMACS parsing                                                      *)
(* ------------------------------------------------------------------ *)

let parse_tests =
  [
    case "tabs and \\r separate literals" (fun () ->
        let d = Dimacs.parse "p cnf 3 2\r\n1\t-2 0\r\n\t2  3\t0\r\n" in
        checki "vars" 3 d.Dimacs.num_vars;
        checkb "clauses" true (d.Dimacs.clauses = [ [ 1; -2 ]; [ 2; 3 ] ]));
    case "trailing comment without newline" (fun () ->
        let d = Dimacs.parse "p cnf 2 1\n1 2 0\nc the end" in
        checkb "clauses" true (d.Dimacs.clauses = [ [ 1; 2 ] ]));
    case "SATLIB footer is not an empty clause" (fun () ->
        let d = Dimacs.parse "c satlib\np cnf 2 2\n1 2 0\n-1 2 0\n%\n0\n\n" in
        checki "clauses" 2 (List.length d.Dimacs.clauses);
        checkb "no empty clause" true
          (List.for_all (fun c -> c <> []) d.Dimacs.clauses));
    case "clause spanning lines" (fun () ->
        let d = Dimacs.parse "p cnf 3 1\n1\n2\n3 0\n" in
        checkb "one clause" true (d.Dimacs.clauses = [ [ 1; 2; 3 ] ]));
    case "malformed header still rejected" (fun () ->
        try
          ignore (Dimacs.parse "p dnf 2 1\n1 2 0\n");
          Alcotest.fail "accepted a p dnf header"
        with Invalid_argument _ -> ());
  ]

let suites =
  [
    ("cnf-preprocess", preprocess_tests);
    ("cnf-union-find", union_find_tests);
    ("cnf-split", split_tests);
    ("cnf-compile", compile_tests);
    ("cnf-conjoin", conjoin_tests);
    ("cnf-parse", parse_tests);
  ]
