(* Coverage for small corners: printers, decoders on malformed input,
   and API paths not exercised elsewhere. *)

open Test_util

let misc_suite =
  [
    case "decode rejects malformed encodings" (fun () ->
        (* A graph with no stars is not the image of any circuit. *)
        let g = Ugraph.path_graph 4 in
        checkb "no gates" true
          (Ctw.decode { Ctw.graph = g; loops = [ 0 ]; names = [ "x" ] } = None));
    case "decode rejects the wrong output count" (fun () ->
        let c = Circuit.of_string "(and x y)" in
        let e = Ctw.encode c in
        (* Two loops on gates -> ambiguous output. *)
        let bad = { e with Ctw.loops = 0 :: 1 :: e.Ctw.loops } in
        checkb "ambiguous" true (Ctw.decode bad = None));
    case "structuring_nodes returns one node per AND" (fun () ->
        let c = Circuit.of_string "(or (and x y) (and (not x) (not y)))" in
        let vt = Vtree.right_linear [ "x"; "y" ] in
        checki "two ANDs" 2 (List.length (Snnf.structuring_nodes c vt)));
    case "printers do not raise" (fun () ->
        let g = Ugraph.cycle_graph 4 in
        let td = Treewidth.decomposition g in
        let nice = Nice.of_treedec td in
        let _ = Format.asprintf "%a" Ugraph.pp g in
        let _ = Format.asprintf "%a" Treedec.pp td in
        let _ = Format.asprintf "%a" Nice.pp nice in
        let m = Sdd.manager (Vtree.balanced [ "x"; "y" ]) in
        let node = Sdd.conjoin m (Sdd.literal m "x" true) (Sdd.literal m "y" false) in
        let _ = Format.asprintf "%a" (Sdd.pp m) node in
        let bm = Bdd.manager [ "x"; "y" ] in
        let _ = Format.asprintf "%a" (Bdd.pp bm) (Bdd.var bm "x") in
        let _ = Format.asprintf "%a" Boolfun.pp (Families.majority 3) in
        let _ = Format.asprintf "%a" Ucq.pp (Ucq.of_string "R(#1,x), x != y, S(y)") in
        ());
    case "nullary atoms print and parse" (fun () ->
        let q = Ucq.of_string "E()" in
        checks "print" "E()" (Ucq.to_string q);
        checkb "holds with fact" true (Ucq.holds q [ Pdb.tuple "E" [] ]);
        checkb "fails without" false (Ucq.holds q [ Pdb.tuple "F" [] ]));
    case "prime implicants of constants" (fun () ->
        checki "tt has the empty term" 1
          (List.length (Prime_implicants.of_boolfun (Boolfun.const [ "x" ] true)));
        checki "ff has none" 0
          (List.length (Prime_implicants.of_boolfun (Boolfun.const [ "x" ] false))));
    case "bdd any_model on true" (fun () ->
        let m = Bdd.manager [ "x" ] in
        Alcotest.(check (option (list (pair string bool))))
          "empty path" (Some []) (Bdd.any_model m (Bdd.true_ m)));
    case "vtree enumerate covers fw_min witness" (fun () ->
        (* the witness returned by fw_min is among the enumerated trees *)
        let f = Families.implication in
        let _, vt = Factor_width.fw_min f in
        checkb "witness valid" true (Vtree.variables vt = [ "x"; "y" ]));
    case "empty clause CNF is unsatisfiable" (fun () ->
        let c = Circuit.of_cnf [ [] ] in
        check boolfun "ff" Boolfun.ff (Circuit.to_boolfun c));
    case "ratio sum/product" (fun () ->
        check ratio "sum" (Ratio.of_ints 5 6)
          (Ratio.sum [ Ratio.of_ints 1 2; Ratio.of_ints 1 3 ]);
        check ratio "product" (Ratio.of_ints 1 6)
          (Ratio.product [ Ratio.of_ints 1 2; Ratio.of_ints 1 3 ]));
    qtest "sdd node_count <= size" QCheck2.Gen.(int_range 0 20) (fun seed ->
        let f = Boolfun.random ~seed (small_vars 4) in
        let m = Sdd.manager (Vtree.balanced (small_vars 4)) in
        let node = Compile.sdd_of_boolfun m f in
        Sdd.node_count m node * 2 <= Sdd.size m node + 2);
    qtest "isa explicit width <= size" QCheck2.Gen.(int_range 0 1) (fun _ ->
        let t = Isa_explicit.build 5 in
        Isa_explicit.width t <= Isa_explicit.size t
        && Isa_explicit.node_count t <= Isa_explicit.size t);
  ]

let suites = [ ("misc", misc_suite) ]
