(* The arena node store: generational compaction and sharded parallel
   apply.

   Invariants under test: compaction preserves the represented function,
   canonicity and the model count while driving tombstones and garbage
   words to zero; dynamic edits followed by compaction and import
   round-trip the function; a budget trip during compaction rolls back
   before any mutation; and apply_parallel agrees with the sequential
   apply loop handle-for-handle. *)

open Test_util

let validate_ok m node =
  match Sdd.validate m node with
  | Ok () -> true
  | Error msg -> Alcotest.failf "invalid SDD: %s" msg

(* A manager with garbage: compile the circuit, then run a throwaway
   conjunction whose intermediates become unreachable. *)
let with_garbage c mk_vt =
  let m = Sdd.manager (mk_vt (Circuit.variables c)) in
  let node = Sdd.compile_circuit m c in
  let vars = Circuit.variables c in
  ignore
    (List.fold_left
       (fun acc v -> Sdd.conjoin m acc (Sdd.literal m v true))
       (Sdd.true_ m) vars);
  (m, node)

let fixtures () =
  [
    (Generators.band_cnf ~width:3 8, Vtree.balanced);
    (Generators.chain_implications 9, Vtree.right_linear);
    (Generators.random_formula ~seed:11 ~vars:8 ~depth:4, Vtree.balanced);
  ]

let compaction_suite =
  [
    case "compact preserves function, canonicity and model count" (fun () ->
        List.iter
          (fun (c, mk_vt) ->
            let m, node = with_garbage c mk_vt in
            let f0 = Sdd.to_boolfun m node in
            let count0 = Sdd.model_count m node in
            let gen0 = Sdd.generation m in
            let node = Sdd.compact m node in
            checkb "function" true (Boolfun.equal f0 (Sdd.to_boolfun m node));
            checkb "count" true
              (Bigint.equal count0 (Sdd.model_count m node));
            checkb "valid" true (validate_ok m node);
            checki "generation bumped" (gen0 + 1) (Sdd.generation m);
            let cs = Sdd.census m in
            checki "no tombstones" 0 cs.Sdd.tombstones;
            checki "no garbage words" 0 cs.Sdd.garbage_words)
          (fixtures ()));
    case "compact_roots relocates positionally" (fun () ->
        let c = Generators.band_cnf ~width:3 8 in
        let m = Sdd.manager (Vtree.balanced (Circuit.variables c)) in
        let a = Sdd.compile_circuit m c in
        let b = Sdd.negate m a in
        let fa = Sdd.to_boolfun m a and fb = Sdd.to_boolfun m b in
        (match Sdd.compact_roots m [| a; b |] with
         | [| a'; b' |] ->
           checkb "root 0" true (Boolfun.equal fa (Sdd.to_boolfun m a'));
           checkb "root 1" true (Boolfun.equal fb (Sdd.to_boolfun m b'));
           checkb "negation survives" true (Sdd.negate m a' = b')
         | _ -> Alcotest.fail "arity");
        ());
    case "edit, compact, import round-trips the function" (fun () ->
        List.iter
          (fun (c, mk_vt) ->
            let m = Sdd.manager (mk_vt (Circuit.variables c)) in
            let node = Sdd.compile_circuit m c in
            let f0 = Sdd.to_boolfun m node in
            (* Dynamic edits leave tombstones behind... *)
            let node = ref node in
            List.iter
              (fun (mv, _) -> node := Sdd.apply_move m mv !node)
              (match Vtree.local_moves_with (Sdd.vtree m) with
               | [] -> []
               | mv :: _ -> [ mv ]);
            let cs = Sdd.census m in
            checkb "edits left garbage" true
              (cs.Sdd.tombstones > 0 && cs.Sdd.garbage_words > 0);
            (* ...compaction reclaims them... *)
            node := Sdd.compact m !node;
            let cs = Sdd.census m in
            checki "tombstones reclaimed" 0 cs.Sdd.tombstones;
            checkb "still valid" true (validate_ok m !node);
            checkb "function preserved" true
              (Boolfun.equal f0 (Sdd.to_boolfun m !node));
            (* ...and the compacted SDD imports cleanly. *)
            let dst = Sdd.manager (Sdd.vtree m) in
            let imported = Sdd.import ~dst ~map:(fun v -> v) m !node in
            checkb "import preserved" true
              (Boolfun.equal f0 (Sdd.to_boolfun dst imported));
            checkb "import valid" true (validate_ok dst imported))
          (fixtures ()));
    case "maybe_compact fires on the threshold" (fun () ->
        let c = Generators.chain_implications 12 in
        let m =
          Sdd.manager ~compact_every:16
            (Vtree.balanced (Circuit.variables c))
        in
        let node = Sdd.compile_circuit m c in
        let f0 = Sdd.to_boolfun m node in
        let node = Sdd.maybe_compact m node in
        checkb "compactions ran" true (Sdd.compactions m > 0);
        checki "generation = compactions" (Sdd.compactions m)
          (Sdd.generation m);
        checkb "function preserved" true
          (Boolfun.equal f0 (Sdd.to_boolfun m node));
        Sdd.set_compact_every m max_int;
        let before = Sdd.compactions m in
        let node' = Sdd.maybe_compact m node in
        checki "disarmed: no pass" before (Sdd.compactions m);
        checkb "disarmed: identity" true (node' = node));
    case "budget trip during compaction rolls back cleanly" (fun () ->
        let c = Generators.band_cnf ~width:3 8 in
        let m, node = with_garbage c Vtree.balanced in
        let f0 = Sdd.to_boolfun m node in
        let cs0 = Sdd.census m in
        let b = Budget.create () in
        Budget.cancel_now b;
        Sdd.set_budget m b;
        (match Sdd.compact m node with
         | _ -> Alcotest.fail "expected Budget.Exhausted"
         | exception Budget.Exhausted _ -> ());
        (* Nothing moved: same census, same handle, same function. *)
        Sdd.set_budget m Budget.unlimited;
        let cs1 = Sdd.census m in
        checki "allocated unchanged" cs0.Sdd.allocated cs1.Sdd.allocated;
        checki "generation unchanged" cs0.Sdd.generation cs1.Sdd.generation;
        checkb "handle still valid" true (validate_ok m node);
        checkb "function unchanged" true
          (Boolfun.equal f0 (Sdd.to_boolfun m node));
        (* And with the budget lifted the same compaction succeeds. *)
        let node = Sdd.compact m node in
        checkb "retry succeeds" true
          (Boolfun.equal f0 (Sdd.to_boolfun m node)));
  ]

let parallel_suite =
  [
    case "apply_parallel agrees with sequential conjoin handle-for-handle"
      (fun () ->
        let fs = random_functions ~vars:6 ~count:8 in
        let vars =
          List.sort_uniq compare (List.concat_map Boolfun.variables fs)
        in
        let m = Sdd.manager (Vtree.balanced vars) in
        let nodes = List.map (Compile.sdd_of_boolfun m) fs in
        let rec pair_up = function
          | a :: b :: rest -> (a, b) :: pair_up rest
          | _ -> []
        in
        let pairs = pair_up nodes in
        let seq = List.map (fun (a, b) -> Sdd.conjoin m a b) pairs in
        let d1 = Sdd.apply_parallel ~domains:1 m pairs in
        let d4 = Sdd.apply_parallel ~domains:4 m pairs in
        checkb "d1 = sequential" true (List.for_all2 ( = ) seq d1);
        checkb "d4 = sequential" true (List.for_all2 ( = ) seq d4);
        List.iter (fun n -> checkb "valid" true (validate_ok m n)) d4);
    case "conjoin_parallel equals conjoin_list" (fun () ->
        let fs = random_functions ~vars:6 ~count:5 in
        let vars =
          List.sort_uniq compare (List.concat_map Boolfun.variables fs)
        in
        let m = Sdd.manager (Vtree.balanced vars) in
        let nodes = List.map (Compile.sdd_of_boolfun m) fs in
        let seq = Sdd.conjoin_list m nodes in
        checkb "d4 tree reduction" true
          (Sdd.conjoin_parallel ~domains:4 m nodes = seq);
        checkb "empty list is true" true
          (Sdd.conjoin_parallel ~domains:4 m [] = Sdd.true_ m));
    case "apply_parallel validates the domain count" (fun () ->
        let m = Sdd.manager (Vtree.balanced [ "x"; "y" ]) in
        let p = (Sdd.literal m "x" true, Sdd.literal m "y" true) in
        (match Sdd.apply_parallel ~domains:0 m [ p ] with
         | _ -> Alcotest.fail "expected Invalid_argument"
         | exception Invalid_argument _ -> ());
        ());
    case "CTWSDD_DOMAINS is validated strictly" (fun () ->
        let check_env v expect =
          Unix.putenv "CTWSDD_DOMAINS" v;
          let r = Obs.Worker.domains_env () in
          Unix.putenv "CTWSDD_DOMAINS" "1";
          match (r, expect) with
          | Ok got, `Ok want ->
            checkb (Printf.sprintf "%S accepted" v) true (got = want)
          | Error _, `Error -> ()
          | Ok _, `Error ->
            Alcotest.failf "%S unexpectedly accepted" v
          | Error msg, `Ok _ ->
            Alcotest.failf "%S unexpectedly rejected: %s" v msg
        in
        check_env "3" (`Ok (Some 3));
        check_env " 2 " (`Ok (Some 2));
        check_env "0" `Error;
        check_env "-4" `Error;
        check_env "lots" `Error;
        check_env "" `Error);
    case "CTWSDD_RING is validated strictly" (fun () ->
        let check_env v expect =
          Unix.putenv "CTWSDD_RING" v;
          let r = Flight_recorder.ring_env () in
          Unix.putenv "CTWSDD_RING" "4096";
          match (r, expect) with
          | Ok got, `Ok want ->
            checkb (Printf.sprintf "%S accepted" v) true (got = want)
          | Error _, `Error -> ()
          | Ok _, `Error -> Alcotest.failf "%S unexpectedly accepted" v
          | Error msg, `Ok _ ->
            Alcotest.failf "%S unexpectedly rejected: %s" v msg
        in
        check_env "64" (`Ok (Some 64));
        check_env " 128 " (`Ok (Some 128));
        check_env "0" `Error;
        check_env "-1" `Error;
        check_env "banana" `Error;
        check_env "" `Error);
    case "shard lock counters conserve and stay silent sequentially"
      (fun () ->
        Obs.set_enabled true;
        Obs.reset ();
        Fun.protect
          ~finally:(fun () ->
            Obs.reset ();
            Obs.set_enabled false)
          (fun () ->
            let fs = random_functions ~vars:6 ~count:8 in
            let vars =
              List.sort_uniq compare (List.concat_map Boolfun.variables fs)
            in
            let m = Sdd.manager (Vtree.balanced vars) in
            let nodes = List.map (Compile.sdd_of_boolfun m) fs in
            (* Sequential compilation never arms the shard mutexes. *)
            let c0 = Sdd.contention m in
            checki "no sequential alloc acq" 0 c0.Sdd.alloc_acquisitions;
            checkb "no sequential shard acq" true
              (List.for_all
                 (fun s ->
                   s.Sdd.unique_acquisitions = 0 && s.Sdd.cache_acquisitions = 0)
                 c0.Sdd.shards);
            let rec pair_up = function
              | a :: b :: rest -> (a, b) :: pair_up rest
              | _ -> []
            in
            ignore (Sdd.apply_parallel ~domains:4 m (pair_up nodes));
            let c = Sdd.contention m in
            let ua =
              List.fold_left
                (fun a s -> a + s.Sdd.unique_acquisitions)
                0 c.Sdd.shards
            in
            let ca =
              List.fold_left
                (fun a s -> a + s.Sdd.cache_acquisitions)
                0 c.Sdd.shards
            in
            checkb "parallel run acquired locks" true (ua + ca > 0);
            checki "sixteen shards" 16 (List.length c.Sdd.shards);
            List.iter
              (fun s ->
                checkb "unique contended <= acquired" true
                  (s.Sdd.unique_contended <= s.Sdd.unique_acquisitions);
                checkb "cache contended <= acquired" true
                  (s.Sdd.cache_contended <= s.Sdd.cache_acquisitions))
              c.Sdd.shards;
            checkb "alloc contended <= acquired" true
              (c.Sdd.alloc_contended <= c.Sdd.alloc_acquisitions);
            (* The epilogue republishes the per-run deltas as ordinary
               Obs counters; the manager was fresh, so the deltas are
               the totals. *)
            checki "unique delta republished" ua
              (Obs.counter_value "sdd.unique_lock.acquisitions");
            checki "cache delta republished" ca
              (Obs.counter_value "sdd.cache_lock.acquisitions");
            checkb "contention in census JSON" true
              (match Sdd.contention_to_json c with
               | Obs.Json.Obj fields ->
                 List.mem_assoc "shards" fields
                 && List.mem_assoc "alloc_acquisitions" fields
               | _ -> false)));
  ]

let suites =
  [
    ("arena compaction", compaction_suite);
    ("parallel apply", parallel_suite);
  ]
