open Test_util

let snnf_suite =
  [
    case "decomposability detection" (fun () ->
        checkb "x&y decomposable" true
          (Snnf.is_decomposable (Circuit.of_string "(and x y)"));
        checkb "x&x not via shared var" false
          (Snnf.is_decomposable (Circuit.of_string "(and x (or x y))")));
    case "determinism detection" (fun () ->
        checkb "x | ~x deterministic" true
          (Snnf.is_deterministic (Circuit.of_string "(or x (not x))"));
        checkb "x | y not deterministic" false
          (Snnf.is_deterministic (Circuit.of_string "(or x y)"));
        checkb "(x&y) | (x&~y) deterministic" true
          (Snnf.is_deterministic
             (Circuit.of_string "(or (and x y) (and x (not y)))")));
    case "structuredness" (fun () ->
        let c = Circuit.of_string "(or (and x y) (and (not x) (not y)))" in
        let vt = Vtree.right_linear [ "x"; "y" ] in
        checkb "structured" true (Snnf.is_structured_by c vt);
        (* An AND whose children share x cannot be structured by any
           vtree: decomposability fails. *)
        let bad = Circuit.of_string "(and (or x y) (or x (not y)))" in
        checkb "not structured" false (Snnf.is_structured_by bad vt));
    case "fanin-3 AND is unstructured" (fun () ->
        let c = Circuit.of_string "(and x y z)" in
        checkb "unstructured" false
          (Snnf.is_structured_by c (Vtree.right_linear [ "x"; "y"; "z" ])));
    case "model count on a d-DNNF" (fun () ->
        (* (x ∧ y) ∨ (¬x ∧ z): decomposable, deterministic. *)
        let c = Circuit.of_string "(or (and x y) (and (not x) z))" in
        checkb "dec" true (Snnf.is_decomposable c);
        checkb "det" true (Snnf.is_deterministic c);
        check bigint "4 models" (Bigint.of_int 4) (Snnf.model_count c));
    case "probability on a d-DNNF" (fun () ->
        let c = Circuit.of_string "(or (and x y) (and (not x) z))" in
        Alcotest.(check (float 1e-9)) "p" 0.5 (Snnf.probability c (fun _ -> 0.5));
        check ratio "exact" (Ratio.of_ints 1 2)
          (Snnf.probability_ratio c (fun _ -> Ratio.of_ints 1 2)));
    qtest "snnf counting agrees with semantics on compiled SDDs"
      QCheck2.Gen.(int_range 0 40)
      (fun seed ->
        let f = Boolfun.random ~seed (small_vars 4) in
        let vt = Vtree.random ~seed:(seed + 3) (small_vars 4) in
        let m = Sdd.manager vt in
        let node = Sdd.of_boolfun_naive m f in
        let c = Sdd.to_nnf_circuit m node in
        let missing = 4 - List.length (Circuit.variables c) in
        Bigint.to_int_exn (Bigint.mul (Bigint.pow2 missing) (Snnf.model_count c))
        = Boolfun.count_models_int f);
    qtest "exported SDD circuits are d-SDNNFs" QCheck2.Gen.(int_range 0 25)
      (fun seed ->
        let f = Boolfun.random ~seed (small_vars 4) in
        let vt = Vtree.random ~seed:(seed + 9) (small_vars 4) in
        let m = Sdd.manager vt in
        let node = Sdd.of_boolfun_naive m f in
        let c = Sdd.to_nnf_circuit m node in
        Snnf.is_nnf c && Snnf.is_decomposable c && Snnf.is_deterministic c
        && Snnf.is_structured_by c vt);
    qtest "probability on exported SDDs matches SDD wmc"
      QCheck2.Gen.(int_range 0 25)
      (fun seed ->
        let f = Boolfun.random ~seed (small_vars 4) in
        let m = Sdd.manager (Vtree.balanced (small_vars 4)) in
        let node = Sdd.of_boolfun_naive m f in
        let c = Sdd.to_nnf_circuit m node in
        let w v = match v with "x01" -> 0.3 | "x02" -> 0.8 | _ -> 0.5 in
        abs_float (Snnf.probability c w -. Sdd.probability m node w) < 1e-9);
  ]

let suites = [ ("snnf", snnf_suite) ]
