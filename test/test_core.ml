open Test_util

let vars n = small_vars n

let fw_suite =
  [
    case "factor width of implication" (fun () ->
        let f = Families.implication in
        let vt = Vtree.right_linear [ "x"; "y" ] in
        (* At the x leaf: factors x / ¬x (2); at the y leaf: 2; at the
           root: factors(F, {x,y}) = models/non-models (2). *)
        checki "fw" 2 (Factor_width.fw f vt));
    case "fw of conjunction is 2 on any vtree" (fun () ->
        let f = Families.conjunction 4 in
        checki "right-linear" 2 (Factor_width.fw f (Vtree.right_linear (Families.xs 4)));
        checki "balanced" 2 (Factor_width.fw f (Vtree.balanced (Families.xs 4))));
    case "fw of parity is 2 on any vtree" (fun () ->
        let f = Families.parity 4 in
        checki "balanced" 2 (Factor_width.fw f (Vtree.balanced (Families.xs 4)));
        checki "random" 2 (Factor_width.fw f (Vtree.random ~seed:4 (Families.xs 4))));
    case "fw of disjointness: interleaved vs separated" (fun () ->
        let f = Families.disjointness 3 in
        let interleaved =
          List.concat (List.init 3 (fun i -> [ Families.x (i + 1); Families.y (i + 1) ]))
        in
        let separated = Families.xs 3 @ Families.ys 3 in
        let wi = Factor_width.fw f (Vtree.right_linear interleaved) in
        let ws = Factor_width.fw f (Vtree.right_linear separated) in
        checkb "interleaved <= 3" true (wi <= 3);
        checkb "separated = 2^3" true (ws >= 8));
    case "fw_min on implication" (fun () ->
        let w, _ = Factor_width.fw_min Families.implication in
        checki "fw(F)" 2 w);
    case "dummy vars do not change factors" (fun () ->
        let f = Families.implication in
        let vt = Vtree.right_linear [ "x"; "w_dummy"; "y" ] in
        checki "fw with dummy" 2 (Factor_width.fw f vt));
    qtest "fw_at root counts F/~F" QCheck2.Gen.(int_range 0 40) (fun seed ->
        let f = Boolfun.random ~seed (vars 4) in
        let vt = Vtree.balanced (vars 4) in
        let a = Factor_width.analyze f vt in
        let root_factors = Factor_width.fw_at a (Vtree.root vt) in
        match Boolfun.is_const f with
        | Some _ -> root_factors = 1
        | None -> root_factors = 2);
  ]

let compile_suite =
  [
    case "cnnf of implication is exact" (fun () ->
        let f = Families.implication in
        let vt = Vtree.right_linear [ "x"; "y" ] in
        let r = Compile.cnnf f vt in
        check boolfun "computes F" f (Circuit.to_boolfun r.Compile.circuit);
        checkb "is NNF" true (Circuit.is_nnf r.Compile.circuit);
        checki "fiw = fw(x)*fw(y) = 4" 4 r.Compile.fiw);
    case "cnnf handles constants" (fun () ->
        let vt = Vtree.right_linear [ "x"; "y" ] in
        let t = Compile.cnnf (Boolfun.const [ "x"; "y" ] true) vt in
        check boolfun "T" (Boolfun.const [ "x"; "y" ] true)
          (Boolfun.lift (Circuit.to_boolfun t.Compile.circuit) [ "x"; "y" ]);
        let b = Compile.cnnf (Boolfun.const [ "x"; "y" ] false) vt in
        check boolfun "F" (Boolfun.const [] false) (Circuit.to_boolfun b.Compile.circuit));
    case "fiw equals product of child factor counts" (fun () ->
        let f = Families.parity 4 in
        let vt = Vtree.balanced (Families.xs 4) in
        let direct = Compile.fiw f vt in
        let via_cnnf = (Compile.cnnf f vt).Compile.fiw in
        checki "agree" direct via_cnnf;
        checki "parity: 2*2" 4 direct);
    case "sdd_of_boolfun canonical vs naive" (fun () ->
        let f = Boolfun.random ~seed:5 (vars 4) in
        let m = Sdd.manager (Vtree.balanced (vars 4)) in
        let a = Compile.sdd_of_boolfun m f in
        let b = Sdd.of_boolfun_naive m f in
        checkb "same canonical node" true (Sdd.equal a b));
    case "theorem 3/4 size accounting formulas" (fun () ->
        checki "thm3" (2 * 5 + 1 + 3 * 2 * 4) (Compile.theorem3_size_bound ~k:2 ~n:5);
        checki "thm4" (2 * 6 + 3 * 2 * 4) (Compile.theorem4_size_bound ~k:2 ~n:5));
    case "sdw on right-linear vtree is OBDD-like for chains" (fun () ->
        let n = 6 in
        let f = Families.chain_implications n in
        let w = Compile.sdw f (Vtree.right_linear (Families.xs n)) in
        checkb "constant width" true (w <= 6));
    qtest "cnnf computes F on random functions and vtrees"
      QCheck2.Gen.(int_range 0 60)
      (fun seed ->
        let f = Boolfun.random ~seed (vars 4) in
        let vt = Vtree.random ~seed:(seed * 7 + 3) (vars 4) in
        let r = Compile.cnnf f vt in
        Boolfun.equal f (Circuit.to_boolfun r.Compile.circuit));
    qtest "cnnf is a deterministic structured NNF" QCheck2.Gen.(int_range 0 30)
      (fun seed ->
        let f = Boolfun.random ~seed (vars 4) in
        let vt = Vtree.random ~seed:(seed * 11 + 1) (vars 4) in
        let r = Compile.cnnf f vt in
        Snnf.is_nnf r.Compile.circuit
        && Snnf.is_decomposable r.Compile.circuit
        && Snnf.is_deterministic r.Compile.circuit
        && Snnf.is_structured_by r.Compile.circuit vt);
    qtest "sdd_of_boolfun computes F (canonicity vs apply route)"
      QCheck2.Gen.(int_range 0 60)
      (fun seed ->
        let f = Boolfun.random ~seed (vars 5) in
        let vt = Vtree.random ~seed:(seed * 13 + 5) (vars 5) in
        let m = Sdd.manager vt in
        let a = Compile.sdd_of_boolfun m f in
        Sdd.equal a (Sdd.of_boolfun_naive m f)
        && Boolfun.equal f (Sdd.to_boolfun m a));
    qtest "cnnf size within Theorem 3 accounting" QCheck2.Gen.(int_range 0 30)
      (fun seed ->
        let f = Boolfun.random ~seed (vars 4) in
        let vt = Vtree.balanced (vars 4) in
        let r = Compile.cnnf f vt in
        Circuit.size r.Compile.circuit
        <= Compile.theorem3_size_bound ~k:r.Compile.fiw ~n:4);
    qtest "model counting on cnnf output is linear-time-correct"
      QCheck2.Gen.(int_range 0 40)
      (fun seed ->
        let f = Boolfun.random ~seed (vars 4) in
        let vt = Vtree.random ~seed:(seed + 77) (vars 4) in
        let r = Compile.cnnf f vt in
        (* cnnf output may not mention all 4 vars; lift the gap. *)
        let measured = Snnf.model_count r.Compile.circuit in
        let missing = 4 - List.length (Circuit.variables r.Compile.circuit) in
        Bigint.to_int_exn (Bigint.mul (Bigint.pow2 missing) measured)
        = Boolfun.count_models_int f);
  ]

let lemma1_suite =
  [
    case "vtree of chain circuit" (fun () ->
        let c = Generators.chain_implications 5 in
        let vt, _w = Lemma1.vtree_of_circuit ~exact:true c in
        Alcotest.(check (list string)) "vars" (Circuit.variables c) (Vtree.variables vt));
    case "lemma 1 bound formulas" (fun () ->
        (* bag size k gives 2^((k+1)·2^k): 2^4 = 16 and 2^12 = 4096. *)
        checks "bag 1" "16" (Bigint.to_string (Lemma1.bound ~bag_size:1));
        checks "bag 2" "4096" (Bigint.to_string (Lemma1.bound ~bag_size:2));
        (* ctw = k means bags of size k+1, so the two formulas coincide. *)
        checkb "ctw version consistent" true
          (Bigint.equal (Lemma1.bound_ctw ~ctw:1) (Lemma1.bound ~bag_size:2)));
    case "lemma 1 check on chain" (fun () ->
        match Lemma1.check (Generators.chain_implications 5) with
        | None -> Alcotest.fail "expected analysis"
        | Some (w, fw, bound) ->
          checkb "within bound" true (Bigint.compare (Bigint.of_int fw) bound <= 0);
          checkb "small width" true (w <= 3);
          checkb "small fw" true (fw <= 8));
    qtest "lemma 1 holds on random window circuits" QCheck2.Gen.(int_range 0 25)
      (fun seed ->
        let c = Generators.random_window ~seed ~window:3 ~vars:5 ~gates:6 in
        match Lemma1.check c with
        | None -> true
        | Some (w, fw, bound) ->
          ignore w;
          Bigint.compare (Bigint.of_int fw) bound <= 0);
    qtest "lemma1 vtree always covers the circuit variables"
      QCheck2.Gen.(int_range 0 40)
      (fun seed ->
        let c = Generators.random_formula ~seed ~vars:4 ~depth:4 in
        if Circuit.variables c = [] then true
        else begin
          let vt, _ = Lemma1.vtree_of_circuit c in
          Vtree.variables vt = Circuit.variables c
        end);
  ]

let bounds_suite =
  [
    qtest "ineq (22): fiw <= fw^2" QCheck2.Gen.(int_range 0 50) (fun seed ->
        let f = Boolfun.random ~seed (vars 4) in
        let vt = Vtree.random ~seed:(seed + 31) (vars 4) in
        Bounds.ineq22 ~fw:(Factor_width.fw f vt) ~fiw:(Compile.fiw f vt));
    qtest "ineq (29): sdw <= 2^(2fw+1)" QCheck2.Gen.(int_range 0 40) (fun seed ->
        let f = Boolfun.random ~seed (vars 4) in
        let vt = Vtree.random ~seed:(seed + 41) (vars 4) in
        Bounds.ineq29 ~fw:(Factor_width.fw f vt) ~sdw:(Compile.sdw f vt));
    qtest "prop 2: compiled circuit witnesses treewidth <= 3 fiw"
      QCheck2.Gen.(int_range 0 20)
      (fun seed ->
        let f = Boolfun.random ~seed (vars 3) in
        let vt = Vtree.random ~seed:(seed + 51) (vars 3) in
        Bounds.prop2_holds (Compile.cnnf f vt));
    qtest "eq (30): SDD witnesses treewidth <= 3 sdw" QCheck2.Gen.(int_range 0 15)
      (fun seed ->
        let f = Boolfun.random ~seed (vars 3) in
        let vt = Vtree.random ~seed:(seed + 61) (vars 3) in
        let m = Sdd.manager vt in
        let node = Compile.sdd_of_boolfun m f in
        Bounds.sdd_ctw_holds m node);
  ]

let rectangles_suite =
  [
    case "lemma 2 dichotomy on implication" (fun () ->
        let f = Families.implication in
        let fs_x = List.map fst (Boolfun.factors f [ "x" ]) in
        let fs_y = List.map fst (Boolfun.factors f [ "y" ]) in
        let fs_xy = List.map fst (Boolfun.factors f [ "x"; "y" ]) in
        List.iter
          (fun h ->
            List.iter
              (fun g ->
                List.iter
                  (fun g' ->
                    match Rectangles.lemma2_status f ~h ~g ~g' with
                    | `Mixed -> Alcotest.fail "Lemma 2 violated"
                    | `Contained | `Disjoint -> ())
                  fs_y)
              fs_x)
          fs_xy);
    case "cover of implication" (fun () ->
        let f = Families.implication in
        let cover = Rectangles.cover_of_function f [ "x" ] in
        checkb "disjoint cover" true (Rectangles.is_disjoint_cover f cover);
        (* Factors are x/¬x and y/¬y; three of the four products lie in F:
           x∧y, ¬x∧y, ¬x∧¬y. *)
        checki "three rectangles" 3 (List.length cover));
    qtest "lemma 3 gives disjoint covers" QCheck2.Gen.(int_range 0 50) (fun seed ->
        let f = Boolfun.random ~seed (vars 4) in
        let cover = Rectangles.cover_of_function f [ "x01"; "x03" ] in
        Rectangles.is_disjoint_cover f cover);
    qtest "lemma 2 dichotomy on random functions" QCheck2.Gen.(int_range 0 30)
      (fun seed ->
        let f = Boolfun.random ~seed (vars 4) in
        let y = [ "x01"; "x02" ] and y' = [ "x03" ] in
        let fs_y = List.map fst (Boolfun.factors f y) in
        let fs_y' = List.map fst (Boolfun.factors f y') in
        let fs_both = List.map fst (Boolfun.factors f (y @ y')) in
        List.for_all
          (fun h ->
            List.for_all
              (fun g ->
                List.for_all
                  (fun g' -> Rectangles.lemma2_status f ~h ~g ~g' <> `Mixed)
                  fs_y')
              fs_y)
          fs_both);
    qtest "theorem 2: rank lower bound <= lemma 3 cover size"
      QCheck2.Gen.(int_range 0 30)
      (fun seed ->
        let f = Boolfun.random ~seed (vars 4) in
        let y = [ "x01"; "x02" ] in
        let cover = Rectangles.cover_of_function f y in
        Rectangles.min_cover_lower_bound f y <= Stdlib.max 1 (List.length cover));
  ]

let ctw_suite =
  [
    case "encode/decode roundtrip" (fun () ->
        List.iter
          (fun s ->
            let c = Circuit.of_string s in
            match Ctw.decode (Ctw.encode c) with
            | None -> Alcotest.failf "decode failed for %s" s
            | Some c' -> checkb s true (Circuit.equivalent c c'))
          [
            "(and x y)";
            "(or (and x y) (not z))";
            "(not (or x (and y z)))";
            "(or (and x (not y)) (and (not x) y))";
          ]);
    case "encoding treewidth matches" (fun () ->
        List.iter
          (fun s ->
            checkb s true (Ctw.encoding_treewidth_matches (Circuit.of_string s)))
          [ "(and x y)"; "(or (and x y) (and y z))" ]);
    case "ctw of constants and literals is 0" (fun () ->
        checki "T" 0 (Ctw.ctw_tiny (Boolfun.const [ "x" ] true));
        checki "x" 0 (Ctw.ctw_tiny (Boolfun.var "x"));
        checki "~x" 1 (Ctw.ctw_tiny (Boolfun.not_ (Boolfun.var "x"))));
    case "ctw of and/or is 1" (fun () ->
        checki "and" 1 (Ctw.ctw_tiny (Boolfun.and_ (Boolfun.var "x") (Boolfun.var "y")));
        checki "or" 1 (Ctw.ctw_tiny (Boolfun.or_ (Boolfun.var "x") (Boolfun.var "y"))));
    case "ctw of xor is 2" (fun () ->
        (* xor is not read-once, so no forest circuit computes it. *)
        checki "xor" 2
          (Ctw.ctw_tiny (Boolfun.xor_ (Boolfun.var "x") (Boolfun.var "y"))));
    case "dnf upper bound sane" (fun () ->
        let f = Families.majority 3 in
        checkb "positive" true (Ctw.ctw_upper_dnf f >= 1);
        checkb "best <= dnf" true (Ctw.ctw_upper_best f <= Ctw.ctw_upper_dnf f));
    qtest "bounded search result computes F when present"
      QCheck2.Gen.(int_range 0 15)
      (fun seed ->
        let f = Boolfun.random ~seed (vars 2) in
        match Ctw.ctw_bounded_search ~max_gates:3 f with
        | None -> true
        | Some tw -> tw >= 0 && tw <= 2);
  ]

let isa_suite =
  [
    case "figure 4 vtree for n=5" (fun () ->
        let vt = Isa.vtree 5 in
        checki "5 leaves" 5 (Vtree.num_leaves vt);
        Alcotest.(check string) "shape" "(y01 (((z01 z02) z03) z04))"
          (Vtree.to_string vt));
    case "compiled ISA5 is correct and small" (fun () ->
        checkb "semantics" true (Isa.check_semantics 5);
        let m, node = Isa.compile 5 in
        checkb "size within bound" true
          (float_of_int (Sdd.size m node) <= 8.0 *. Isa.size_bound 5));
    case "compiled ISA18 is correct" (fun () ->
        checkb "semantics" true (Isa.check_semantics 18));
    case "invalid sizes rejected" (fun () ->
        Alcotest.check_raises "raise" (Invalid_argument "Isa.vtree: 7 is not a valid ISA size")
          (fun () -> ignore (Isa.vtree 7)));
    case "explicit construction for ISA5" (fun () ->
        let t = Isa_explicit.build 5 in
        checkb "semantics" true (Isa_explicit.check_semantics 5);
        (match Isa_explicit.validate t with
         | Ok () -> ()
         | Error m -> Alcotest.failf "invalid explicit SDD: %s" m);
        checkb "within bound" true
          (float_of_int (Isa_explicit.size t) <= 8.0 *. Isa.size_bound 5);
        checkb "gates <= paper bound" true
          (Isa_explicit.distinct_gates t <= Isa_explicit.paper_gate_bound 5));
    case "explicit construction for ISA18" (fun () ->
        let t = Isa_explicit.build 18 in
        checkb "semantics (sampled)" true (Isa_explicit.check_semantics 18);
        (match Isa_explicit.validate t with
         | Ok () -> ()
         | Error m -> Alcotest.failf "invalid explicit SDD: %s" m);
        (* The uncompressed proof object is smaller than the canonical
           (compressed) SDD of ISA18 — canonicity costs succinctness. *)
        let mgr, canonical = Isa.compile 18 in
        checkb "beats canonical" true
          (Isa_explicit.size t < Sdd.size mgr canonical);
        checkb "gates <= paper bound" true
          (Isa_explicit.distinct_gates t <= Isa_explicit.paper_gate_bound 18));
    case "explicit construction exports to a d-SDNNF" (fun () ->
        let t = Isa_explicit.build 5 in
        let c = Isa_explicit.to_nnf_circuit t in
        checkb "nnf" true (Snnf.is_nnf c);
        checkb "decomposable" true (Snnf.is_decomposable c);
        checkb "deterministic" true (Snnf.is_deterministic c);
        checkb "structured by the Figure 4 vtree" true
          (Snnf.is_structured_by c (Isa.vtree 5));
        checkb "computes ISA5" true
          (Boolfun.equal (Circuit.to_boolfun c) (Families.isa 5)));
    case "small term count formula" (fun () ->
        (* m = 2 for n = 5: 3^3 + 1 = 28. *)
        checki "n=5" 28 (Isa_explicit.small_term_count 5);
        checki "n=18" 244 (Isa_explicit.small_term_count 18));
  ]

let suites =
  [
    ("factor_width", fw_suite);
    ("compile", compile_suite);
    ("lemma1", lemma1_suite);
    ("bounds", bounds_suite);
    ("rectangles", rectangles_suite);
    ("ctw_computability", ctw_suite);
    ("isa", isa_suite);
  ]
