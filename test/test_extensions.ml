open Test_util

(* ------------------------------------------------------------------ *)
(* Lifted inference                                                    *)
(* ------------------------------------------------------------------ *)

let lifted_suite =
  [
    case "single ground atom" (fun () ->
        let db = Pdb.make [ (Pdb.tuple "R" [ "1" ], Ratio.of_ints 1 3) ] in
        let q = Ucq.of_string "R(#1)" in
        Alcotest.(check (option ratio)) "p" (Some (Ratio.of_ints 1 3))
          (Lifted.probability q db));
    case "independent union over the domain" (fun () ->
        let db =
          Pdb.make
            [
              (Pdb.tuple "R" [ "1" ], Ratio.of_ints 1 2);
              (Pdb.tuple "R" [ "2" ], Ratio.of_ints 1 2);
            ]
        in
        (* P(exists x R(x)) = 1 - 1/4 = 3/4. *)
        Alcotest.(check (option ratio)) "p" (Some (Ratio.of_ints 3 4))
          (Lifted.probability (Ucq.of_string "R(x)") db));
    case "unsafe queries refused" (fun () ->
        let db = Pdb.complete_rst 2 in
        checkb "inversion" true
          (Lifted.probability (Ucq.of_string "R(x), S(x,y), T(y)") db = None);
        checkb "self join" true
          (Lifted.probability (Ucq.of_string "R(x), R(y)") db = None));
    qtest "lifted = brute force on hierarchical queries" QCheck2.Gen.(int_range 1 2)
      (fun n ->
        let db = Pdb.complete_rst n in
        List.for_all
          (fun qs ->
            let q = Ucq.of_string qs in
            match Lifted.probability q db with
            | None -> false
            | Some p -> Ratio.equal p (Prob.brute q db))
          [ "R(x), S(x,y)"; "R(x)"; "S(x,y)"; "R(x) | T(y)" ]);
    case "lifted scales beyond compilation comfort" (fun () ->
        (* n = 12: 12 + 144 + 12 = 168 tuples; lifted is instant and
           matches the OBDD route on the hierarchical query. *)
        let db = Pdb.complete_rst 6 in
        let q = Ucq.of_string "R(x), S(x,y)" in
        let lifted = Option.get (Lifted.probability q db) in
        let via_obdd, _ = Prob.via_obdd_exn q db in
        check ratio "agree" via_obdd lifted);
    qtest "lifted agrees with obdd route on random hierarchical dbs"
      QCheck2.Gen.(int_range 0 20)
      (fun seed ->
        let st = Random.State.make [| seed; 4242 |] in
        let facts =
          List.filter
            (fun _ -> Random.State.bool st)
            (Pdb.complete_rst 3).Pdb.facts
        in
        facts = []
        ||
        let db =
          Pdb.make
            (List.map
               (fun t -> (t, Ratio.of_ints (1 + Random.State.int st 5) 6))
               facts)
        in
        let q = Ucq.of_string "R(x), S(x,y)" in
        match Lifted.probability q db with
        | None -> false
        | Some p -> Ratio.equal p (fst (Prob.via_obdd_exn q db)));
  ]

(* ------------------------------------------------------------------ *)
(* Vtree local moves and search                                        *)
(* ------------------------------------------------------------------ *)

let vtree_search_suite =
  [
    case "local moves of a 2-leaf vtree" (fun () ->
        let t = Vtree.right_linear [ "a"; "b" ] in
        let moves = Vtree.local_moves t in
        checki "only the swap" 1 (List.length moves);
        checkb "swapped" true
          (List.exists (fun t' -> Vtree.leaf_order t' = [ "b"; "a" ]) moves));
    case "moves preserve the variable set" (fun () ->
        let t = Vtree.balanced (small_vars 5) in
        checkb "all same vars" true
          (List.for_all
             (fun t' -> Vtree.variables t' = Vtree.variables t)
             (Vtree.local_moves t)));
    case "rotation reaches the other linear shape" (fun () ->
        (* Right-linear over 3 vars -> one left rotation gives left-linear. *)
        let t = Vtree.right_linear [ "a"; "b"; "c" ] in
        checkb "left-linear reachable" true
          (List.exists
             (fun t' -> Vtree.to_shape t' = Vtree.to_shape (Vtree.left_linear [ "a"; "b"; "c" ]))
             (Vtree.local_moves t)));
    qtest "moves are involutive-ish: the original is reachable back"
      QCheck2.Gen.(int_range 0 20)
      (fun seed ->
        let t = Vtree.random ~seed (small_vars 4) in
        List.for_all
          (fun t' ->
            List.exists (fun t'' -> Vtree.equal t'' t) (Vtree.local_moves t'))
          (Vtree.local_moves t));
    case "search improves disjointness over right-linear" (fun () ->
        let f = Families.disjointness 3 in
        let vars = Boolfun.variables f in
        let start = Vtree.right_linear vars in
        let from = Vtree_search.sdd_size_score f start in
        let _, best = Vtree_search.minimize_sdd_size_exn f start in
        checkb "no worse" true (best <= from));
    qtest "search result is a local minimum score" QCheck2.Gen.(int_range 0 10)
      (fun seed ->
        let f = Boolfun.random ~seed (small_vars 4) in
        let vt, s = Vtree_search.minimize_sdd_size_exn f (Vtree.balanced (small_vars 4)) in
        List.for_all
          (fun t' -> Vtree_search.sdd_size_score f t' >= s)
          (Vtree.local_moves vt));
    qtest "sdw_score matches Compile.sdw" QCheck2.Gen.(int_range 0 15) (fun seed ->
        let f = Boolfun.random ~seed (small_vars 4) in
        let vt = Vtree.random ~seed:(seed + 2) (small_vars 4) in
        Vtree_search.sdw_score f vt = Compile.sdw f vt);
  ]

(* ------------------------------------------------------------------ *)
(* Pathwidth specialisation                                            *)
(* ------------------------------------------------------------------ *)

let pathwidth_suite =
  [
    case "obdd order covers exactly the variables" (fun () ->
        let c = Generators.chain_implications 7 in
        let order = Lemma1.obdd_order_of_circuit c in
        Alcotest.(check (list string)) "perm"
          (Circuit.variables c)
          (List.sort compare order));
    case "chain obdd width bounded under the path layout" (fun () ->
        List.iter
          (fun n ->
            let c = Generators.chain_implications n in
            let order = Lemma1.obdd_order_of_circuit c in
            let m = Bdd.manager order in
            let node = Bdd.compile_circuit m c in
            checkb (Printf.sprintf "n=%d" n) true (Bdd.width m node <= 4))
          [ 4; 8; 12; 16 ]);
    case "band obdd width bounded under the path layout" (fun () ->
        List.iter
          (fun n ->
            let c = Generators.band_cnf ~width:3 n in
            let order = Lemma1.obdd_order_of_circuit c in
            let m = Bdd.manager order in
            let node = Bdd.compile_circuit m c in
            checkb (Printf.sprintf "n=%d" n) true (Bdd.width m node <= 8))
          [ 5; 8; 11 ]);
  ]

(* ------------------------------------------------------------------ *)
(* DIMACS                                                              *)
(* ------------------------------------------------------------------ *)

let dimacs_text = "c a comment\np cnf 4 3\n1 -2 0\n2 3 0\n-1 4 0\n"

let dimacs_suite =
  [
    case "parse basic file" (fun () ->
        let d = Dimacs.parse dimacs_text in
        checki "vars" 4 d.Dimacs.num_vars;
        checki "clauses" 3 (List.length d.Dimacs.clauses);
        Alcotest.(check (list (list int))) "content"
          [ [ 1; -2 ]; [ 2; 3 ]; [ -1; 4 ] ]
          d.Dimacs.clauses);
    case "multi-line clauses and missing trailing zero" (fun () ->
        let d = Dimacs.parse "p cnf 3 2\n1\n2 0\n-3 0" in
        checki "clauses" 2 (List.length d.Dimacs.clauses);
        Alcotest.(check (list int)) "first" [ 1; 2 ] (List.hd d.Dimacs.clauses));
    case "parse errors" (fun () ->
        List.iter
          (fun s ->
            match Dimacs.parse s with
            | exception Invalid_argument _ -> ()
            | _ -> Alcotest.failf "expected failure on %S" s)
          [ "1 2 0"; "p cnf x y"; "p cnf 2 1\n3 0"; "p cnf 2 2\n1 0" ]);
    case "print/parse roundtrip" (fun () ->
        let d = Dimacs.parse dimacs_text in
        let d' = Dimacs.parse (Dimacs.print d) in
        checkb "equal" true (d = d'));
    case "free variables counted" (fun () ->
        let d = Dimacs.parse "p cnf 5 1\n1 -2 0\n" in
        checki "free" 3 (Dimacs.free_var_count d));
    case "model count through the pipeline" (fun () ->
        let d = Dimacs.parse dimacs_text in
        let c = Dimacs.to_circuit d in
        (* brute force: (1 ∨ ¬2) ∧ (2 ∨ 3) ∧ (¬1 ∨ 4) *)
        let f = Circuit.to_boolfun c in
        let brute = Boolfun.count_models_int f in
        let m = Sdd.manager (Vtree.balanced (Circuit.variables c)) in
        let node = Sdd.compile_circuit m c in
        checki "agree" brute (Bigint.to_int_exn (Sdd.model_count m node)));
    case "of_clauses roundtrip" (fun () ->
        let clauses = [ [ ("a", true); ("b", false) ]; [ ("b", true) ] ] in
        let d, name = Dimacs.of_clauses clauses in
        checki "vars" 2 d.Dimacs.num_vars;
        checks "first var" "a" (name 1));
  ]

(* ------------------------------------------------------------------ *)
(* SDD knowledge-compilation-map queries                               *)
(* ------------------------------------------------------------------ *)

let sdd_queries_suite =
  [
    case "consistency and validity" (fun () ->
        let m = Sdd.manager (Vtree.balanced [ "x"; "y" ]) in
        let x = Sdd.literal m "x" true in
        checkb "x consistent" true (Sdd_queries.consistent m x);
        checkb "x not valid" false (Sdd_queries.valid m x);
        checkb "x|~x valid" true
          (Sdd_queries.valid m (Sdd.disjoin m x (Sdd.negate m x))));
    case "entailment" (fun () ->
        let m = Sdd.manager (Vtree.balanced [ "x"; "y" ]) in
        let x = Sdd.literal m "x" true and y = Sdd.literal m "y" true in
        let xy = Sdd.conjoin m x y in
        checkb "x&y |= x" true (Sdd_queries.entails m xy x);
        checkb "x |/= x&y" false (Sdd_queries.entails m x xy));
    case "clause entailment and implicants" (fun () ->
        let m = Sdd.manager (Vtree.balanced [ "x"; "y"; "z" ]) in
        let f =
          Sdd.disjoin m
            (Sdd.conjoin m (Sdd.literal m "x" true) (Sdd.literal m "y" true))
            (Sdd.literal m "z" true)
        in
        checkb "CE x|z... actually y|z|x" true
          (Sdd_queries.clause_entailed m f [ ("x", true); ("z", true) ]);
        checkb "IM x&y" true (Sdd_queries.implicant m f [ ("x", true); ("y", true) ]);
        checkb "not IM x" false (Sdd_queries.implicant m f [ ("x", true) ]));
    case "forgetting" (fun () ->
        let m = Sdd.manager (Vtree.balanced [ "x"; "y" ]) in
        let f = Sdd.conjoin m (Sdd.literal m "x" true) (Sdd.literal m "y" true) in
        let g = Sdd_queries.forget m [ "x" ] f in
        checkb "exists x (x&y) = y" true (Sdd.equal g (Sdd.literal m "y" true)));
    case "model enumeration" (fun () ->
        let m = Sdd.manager (Vtree.balanced [ "x"; "y" ]) in
        let f = Sdd.disjoin m (Sdd.literal m "x" true) (Sdd.literal m "y" true) in
        let ms = Sdd_queries.models m f in
        checki "3 models" 3 (List.length ms);
        checkb "all satisfy" true
          (List.for_all
             (fun asg -> Sdd.eval m f (Boolfun.assignment_of_list asg))
             ms));
    case "model enumeration respects the limit" (fun () ->
        let m = Sdd.manager (Vtree.balanced (small_vars 5)) in
        let ms = Sdd_queries.models ~limit:7 m (Sdd.true_ m) in
        checki "limit" 7 (List.length ms));
    qtest "enumeration matches model count" QCheck2.Gen.(int_range 0 25)
      (fun seed ->
        let f = Boolfun.random ~seed (small_vars 4) in
        let m = Sdd.manager (Vtree.random ~seed:(seed + 6) (small_vars 4)) in
        let node = Compile.sdd_of_boolfun m f in
        List.length (Sdd_queries.models ~limit:100 m node)
        = Boolfun.count_models_int f);
    qtest "entails agrees with boolfun" QCheck2.Gen.(int_range 0 25) (fun seed ->
        let f = Boolfun.random ~seed (small_vars 4) in
        let g = Boolfun.random ~seed:(seed + 91) (small_vars 4) in
        let m = Sdd.manager (Vtree.balanced (small_vars 4)) in
        let nf = Compile.sdd_of_boolfun m f in
        let ng = Compile.sdd_of_boolfun m g in
        Sdd_queries.entails m nf ng
        = Boolfun.equal (Boolfun.and_ f g) f);
    case "to_obdd rejects non-linear vtrees" (fun () ->
        let m = Sdd.manager (Vtree.balanced (small_vars 4)) in
        Alcotest.check_raises "raise"
          (Invalid_argument "Sdd_queries.to_obdd: the vtree is not right-linear")
          (fun () -> ignore (Sdd_queries.to_obdd m (Sdd.true_ m))));
    qtest "to_obdd preserves the function on linear vtrees"
      QCheck2.Gen.(int_range 0 30)
      (fun seed ->
        let f = Boolfun.random ~seed (small_vars 5) in
        let m = Sdd.manager (Vtree.right_linear (small_vars 5)) in
        let node = Compile.sdd_of_boolfun m f in
        let bm, bnode = Sdd_queries.to_obdd m node in
        Boolfun.equal f (Bdd.to_boolfun bm bnode));
    qtest "linear-vtree SDD width tracks OBDD width (within factor 2)"
      QCheck2.Gen.(int_range 0 30)
      (fun seed ->
        let f = Boolfun.random ~seed (small_vars 5) in
        let m = Sdd.manager (Vtree.right_linear (small_vars 5)) in
        let node = Compile.sdd_of_boolfun m f in
        let bm, bnode = Sdd_queries.to_obdd m node in
        let sdw = Sdd.width m node in
        let ow = Bdd.width bm bnode in
        sdw <= (2 * ow) + 2 && ow <= Stdlib.max 1 sdw);
    qtest "forget agrees with boolfun quantification" QCheck2.Gen.(int_range 0 25)
      (fun seed ->
        let f = Boolfun.random ~seed (small_vars 4) in
        let m = Sdd.manager (Vtree.balanced (small_vars 4)) in
        let node = Compile.sdd_of_boolfun m f in
        let forgotten = Sdd_queries.forget m [ "x01"; "x03" ] node in
        Boolfun.equal
          (Sdd.to_boolfun m forgotten)
          (Boolfun.lift
             (Boolfun.exists_ "x01" (Boolfun.exists_ "x03" f))
             (small_vars 4)));
  ]

let plans_suite =
  [
    case "plan of a ground atom" (fun () ->
        let db = Pdb.make [ (Pdb.tuple "R" [ "1" ], Ratio.of_ints 2 5) ] in
        match Lifted.plan_cq (List.hd (Ucq.of_string "R(#1)")) db with
        | Some (Lifted.Fact t) -> checks "fact" "R(1)" (Pdb.var_name t)
        | _ -> Alcotest.fail "expected a Fact plan");
    case "plan of R(x),S(x,y) has nested unions" (fun () ->
        let db = Pdb.complete_rst 2 in
        match Lifted.plan_cq (List.hd (Ucq.of_string "R(x), S(x,y)")) db with
        | Some (Lifted.Independent_union (x, branches)) ->
          checks "root" "x" x;
          checki "branches = domain" 2 (List.length branches)
        | _ -> Alcotest.fail "expected a union plan");
    case "no plan for the inversion query" (fun () ->
        let db = Pdb.complete_rst 2 in
        checkb "none" true
          (Lifted.plan_cq (List.hd (Ucq.of_string "R(x), S(x,y), T(y)")) db = None));
    qtest "plan evaluation = lifted probability" QCheck2.Gen.(int_range 1 3)
      (fun n ->
        let db = Pdb.complete_rst n in
        List.for_all
          (fun qs ->
            let cq = List.hd (Ucq.of_string qs) in
            match (Lifted.plan_cq cq db, Lifted.probability_cq cq db) with
            | Some plan, Some p -> Ratio.equal (Lifted.eval_plan db plan) p
            | None, None -> true
            | _ -> false)
          [ "R(x), S(x,y)"; "S(x,y)"; "R(x)" ]);
    case "plan pretty-printer mentions the root variable" (fun () ->
        let db = Pdb.complete_rst 2 in
        let plan =
          Option.get (Lifted.plan_cq (List.hd (Ucq.of_string "R(x), S(x,y)")) db)
        in
        let s = Format.asprintf "%a" Lifted.pp_plan plan in
        checkb "mentions union over x" true
          (let rec contains i =
             i + 12 <= String.length s
             && (String.sub s i 12 = "union over x" || contains (i + 1))
           in
           contains 0));
  ]

let sift_suite =
  [
    case "transfer preserves the function" (fun () ->
        let src = Bdd.manager (small_vars 4) in
        let f = Boolfun.random ~seed:15 (small_vars 4) in
        let node = Bdd.of_boolfun src f in
        let dst = Bdd.manager (List.rev (small_vars 4)) in
        let node' = Bdd.transfer src node dst in
        checkb "same function" true (Boolfun.equal f (Bdd.to_boolfun dst node')));
    case "sifting fixes the separated disjointness order" (fun () ->
        let n = 4 in
        let f = Families.disjointness n in
        let bad = Bdd.manager (Families.xs n @ Families.ys n) in
        let node = Bdd.of_boolfun bad f in
        let before = Bdd.size bad node in
        let m', node', order' = Bdd.sift bad node in
        checkb "improved a lot" true (Bdd.size m' node' * 2 < before);
        checkb "function preserved" true
          (Boolfun.equal f (Bdd.to_boolfun m' node'));
        checki "order is a permutation" (2 * n)
          (List.length (List.sort_uniq compare order')));
    qtest "sift never increases size" QCheck2.Gen.(int_range 0 15) (fun seed ->
        let f = Boolfun.random ~seed (small_vars 5) in
        let m = Bdd.manager (small_vars 5) in
        let node = Bdd.of_boolfun m f in
        let m', node', _ = Bdd.sift m node in
        Bdd.size m' node' <= Bdd.size m node
        && Boolfun.equal f (Bdd.to_boolfun m' node'));
  ]

let suites =
  [
    ("lifted", lifted_suite);
    ("safe_plans", plans_suite);
    ("bdd_sift", sift_suite);
    ("vtree_search", vtree_search_suite);
    ("pathwidth_obdd", pathwidth_suite);
    ("dimacs", dimacs_suite);
    ("sdd_queries", sdd_queries_suite);
  ]
