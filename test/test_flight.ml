(* Flight recorder, postmortem dumps and the OpenMetrics exporter.

   The recorder and run-ID state are process-global, so cases that
   resize or clear the ring restore the default capacity afterwards. *)

open Test_util

let with_obs f =
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.reset ();
      Obs.set_enabled false)
    f

let with_fresh_ring ?(capacity = 4096) f =
  Flight_recorder.set_capacity capacity;
  Fun.protect ~finally:(fun () -> Flight_recorder.set_capacity 4096) f

let entry_names () =
  List.map (fun e -> e.Flight_recorder.name) (Flight_recorder.tail ())

let recorder_suite =
  [
    case "tail returns entries oldest first" (fun () ->
        with_fresh_ring (fun () ->
            List.iter
              (fun n -> Flight_recorder.record Flight_recorder.Note n)
              [ "a"; "b"; "c" ];
            checkb "names in order" true (entry_names () = [ "a"; "b"; "c" ]);
            checki "recorded" 3 (Flight_recorder.recorded ());
            checki "overwritten" 0 (Flight_recorder.overwritten ())));
    case "wraparound keeps the newest capacity entries" (fun () ->
        with_fresh_ring ~capacity:16 (fun () ->
            checki "capacity rounded" 16 (Flight_recorder.capacity ());
            for i = 1 to 40 do
              Flight_recorder.record Flight_recorder.Note
                (Printf.sprintf "n%02d" i)
            done;
            checki "recorded counts everything" 40
              (Flight_recorder.recorded ());
            checki "overwritten" 24 (Flight_recorder.overwritten ());
            let names = entry_names () in
            checki "tail bounded by capacity" 16 (List.length names);
            checks "oldest retained" "n25" (List.hd names);
            checks "newest retained" "n40" (List.hd (List.rev names));
            (* ?max truncates to the newest entries. *)
            checkb "max keeps newest" true
              (List.map
                 (fun e -> e.Flight_recorder.name)
                 (Flight_recorder.tail ~max:2 ())
              = [ "n39"; "n40" ])));
    case "disabled recorder drops entries" (fun () ->
        with_fresh_ring (fun () ->
            Flight_recorder.set_enabled false;
            Fun.protect
              ~finally:(fun () -> Flight_recorder.set_enabled true)
              (fun () ->
                Flight_recorder.record Flight_recorder.Note "dropped";
                checki "nothing recorded" 0 (Flight_recorder.recorded ()))));
    case "spans and events reach the ring with Obs aggregation off"
      (fun () ->
        with_fresh_ring (fun () ->
            Obs.set_enabled false;
            Obs.span "flight.stage" (fun () -> ignore (Sys.opaque_identity 1));
            Obs.event "flight.step" [ ("k", Obs.Json.String "v") ];
            let tl = Flight_recorder.tail () in
            let find name =
              List.find_opt (fun e -> e.Flight_recorder.name = name) tl
            in
            (match find "flight.stage" with
             | Some e ->
               checkb "span kind" true (e.Flight_recorder.kind = Flight_recorder.Span);
               checkb "span duration nonnegative" true
                 (e.Flight_recorder.dur_s >= 0.)
             | None -> Alcotest.fail "span completion not recorded");
            (match find "flight.step" with
             | Some e ->
               checkb "event kind" true
                 (e.Flight_recorder.kind = Flight_recorder.Event);
               checkb "event args stringified" true
                 (List.assoc_opt "k" e.Flight_recorder.args = Some "v")
             | None -> Alcotest.fail "event not recorded");
            (* But no aggregated state was touched. *)
            checki "no obs events" 0 (List.length (Obs.events ()))));
    case "budget trip lands in the ring when aggregation is off" (fun () ->
        with_fresh_ring (fun () ->
            Obs.set_enabled false;
            let b = Budget.create ~max_nodes:4 () in
            (match Budget.check_nodes b 5 with
             | () -> Alcotest.fail "expected Budget.Exhausted"
             | exception Budget.Exhausted Budget.Node_limit -> ()
             | exception Budget.Exhausted _ -> Alcotest.fail "wrong reason");
            match
              List.find_opt
                (fun e -> e.Flight_recorder.name = "budget.trip")
                (Flight_recorder.tail ())
            with
            | Some e ->
              checkb "trip kind" true
                (e.Flight_recorder.kind = Flight_recorder.Budget_trip);
              checkb "trip reason arg" true
                (List.assoc_opt "reason" e.Flight_recorder.args
                = Some "node_limit")
            | None -> Alcotest.fail "budget.trip not recorded"));
    case "hard_reset clears the ring and mints a fresh run id" (fun () ->
        with_fresh_ring (fun () ->
            Obs.set_enabled true;
            Obs.reset ();
            Obs.incr "hr.counter";
            Flight_recorder.record Flight_recorder.Note "hr.before";
            let old_run = Obs.run_id () in
            Obs.hard_reset ();
            Fun.protect
              ~finally:(fun () -> Obs.set_enabled false)
              (fun () ->
                checki "ring cleared" 0 (Flight_recorder.recorded ());
                checki "counters cleared" 0 (Obs.counter_value "hr.counter");
                checki "events cleared" 0 (List.length (Obs.events ()));
                checkb "new run id" true (Obs.run_id () <> old_run))));
  ]

let run_id_suite =
  [
    case "fresh_run_id is unique and does not install itself" (fun () ->
        let a = Flight_recorder.fresh_run_id () in
        let b = Flight_recorder.fresh_run_id () in
        checkb "distinct" true (a <> b);
        checkb "not installed" true (Obs.run_id () <> b));
    case "with_run_id overrides, nests and restores" (fun () ->
        let outer = Obs.run_id () in
        let seen =
          Obs.with_run_id "r-outer" (fun () ->
              let o = Obs.run_id () in
              let i = Obs.with_run_id "r-inner" Obs.run_id in
              (o, i, Obs.run_id ()))
        in
        checkb "override seen" true (seen = ("r-outer", "r-inner", "r-outer"));
        checks "restored" outer (Obs.run_id ()));
    case "entries are stamped with the override" (fun () ->
        with_fresh_ring (fun () ->
            Obs.with_run_id "r-stamp" (fun () ->
                Flight_recorder.record Flight_recorder.Note "stamped");
            match Flight_recorder.tail () with
            | [ e ] -> checks "stamp" "r-stamp" e.Flight_recorder.run
            | _ -> Alcotest.fail "expected one entry"));
    case "run id is stable across Domain worker merges" (fun () ->
        with_fresh_ring (fun () ->
            with_obs (fun () ->
                let runs =
                  Obs.with_run_id "r-fleet" (fun () ->
                      Vtree_search.parallel_map ~domains:4
                        (fun i ->
                          Obs.incr "fleet.item";
                          Flight_recorder.record Flight_recorder.Note
                            (Printf.sprintf "fleet%d" i);
                          Obs.run_id ())
                        [ 1; 2; 3; 4; 5; 6; 7; 8 ])
                in
                checkb "every worker saw the parent run id" true
                  (List.for_all (String.equal "r-fleet") runs);
                (* Worker metrics were absorbed at the join... *)
                checki "merged counter" 8 (Obs.counter_value "fleet.item");
                (* ...and every ring entry carries the same run. *)
                let fleet =
                  List.filter
                    (fun e ->
                      String.length e.Flight_recorder.name >= 5
                      && String.sub e.Flight_recorder.name 0 5 = "fleet")
                    (Flight_recorder.tail ())
                in
                checki "all entries present" 8 (List.length fleet);
                checkb "all stamped" true
                  (List.for_all
                     (fun e -> e.Flight_recorder.run = "r-fleet")
                     fleet))));
  ]

let member_exn name j =
  match Obs.Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "field %s missing" name

let postmortem_suite =
  [
    case "dump follows the ctwsdd-postmortem/v1 schema and round-trips"
      (fun () ->
        with_fresh_ring (fun () ->
            Obs.with_run_id "r-pm" (fun () ->
                Flight_recorder.record Flight_recorder.Note "pm.marker";
                let j = Postmortem.json ~reason:"test" ~detail:"unit" () in
                (match Obs.Json.of_string (Obs.Json.to_string j) with
                 | Ok j' -> checkb "round-trip" true (j = j')
                 | Error e -> Alcotest.fail e);
                checkb "schema" true
                  (member_exn "schema" j
                  = Obs.Json.String "ctwsdd-postmortem/v1");
                checkb "reason" true
                  (member_exn "reason" j = Obs.Json.String "test");
                checkb "run id" true
                  (member_exn "run_id" j = Obs.Json.String "r-pm");
                checkb "pid" true
                  (member_exn "pid" j = Obs.Json.Int (Unix.getpid ()));
                (* Self-contained: GC stats, metrics snapshot and the
                   recorder tail all ride inside the one document. *)
                checkb "gc live_words" true
                  (Obs.Json.member "live_words" (member_exn "gc" j) <> None);
                checkb "metrics schema v4" true
                  (Obs.Json.member "schema" (member_exn "metrics" j)
                  = Some (Obs.Json.String "ctwsdd-metrics/v4"));
                checkb "top-level attribution" true
                  (match Obs.Json.member "attribution" j with
                   | Some (Obs.Json.List _) -> true
                   | _ -> false);
                match member_exn "entries" (member_exn "flight_recorder" j) with
                | Obs.Json.List entries ->
                  checkb "marker in tail" true
                    (List.exists
                       (fun e ->
                         Obs.Json.member "name" e
                         = Some (Obs.Json.String "pm.marker"))
                       entries)
                | _ -> Alcotest.fail "entries not a list")));
    case "unbudgeted dump shows an inactive budget, budgeted dump has caps"
      (fun () ->
        let j = Postmortem.json ~budget:Budget.unlimited ~reason:"t" () in
        checkb "inactive budget" true
          (member_exn "active" (member_exn "budget" j) = Obs.Json.Bool false);
        let b = Budget.create ~max_nodes:42 () in
        let j = Postmortem.json ~budget:b ~reason:"t" () in
        let bj = member_exn "budget" j in
        checkb "max_nodes" true (member_exn "max_nodes" bj = Obs.Json.Int 42);
        checkb "unlimited cap is null" true
          (member_exn "max_memory_words" bj = Obs.Json.Null));
    case "manager census appears in the dump" (fun () ->
        let m = Sdd.manager (Vtree.balanced [ "a"; "b"; "c" ]) in
        ignore (Sdd.compile_circuit m (Circuit.of_string "(or a (and b c))"));
        let j = Postmortem.json ~reason:"t" () in
        (match member_exn "managers" j with
         | Obs.Json.Obj fields ->
           checkb "a census registered" true
             (List.exists
                (fun (k, _) ->
                  String.length k >= 12 && String.sub k 0 12 = "sdd_manager_")
                fields)
         | _ -> Alcotest.fail "managers not an object");
        (* The direct census agrees with the manager. *)
        let c = Sdd.census m in
        checki "allocated" (Sdd.num_nodes_allocated m) c.Sdd.allocated;
        checkb "live nodes typed" true
          (c.Sdd.allocated
          = 2 + c.Sdd.decisions + c.Sdd.literals + c.Sdd.tombstones);
        checkb "bytes per node positive" true (c.Sdd.bytes_per_node > 0));
    case "write is atomic and the file parses" (fun () ->
        let path = Filename.temp_file "ctwsdd_pm" ".json" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let written = Postmortem.write ~path ~reason:"disk" () in
            checks "returns the path" path written;
            let ic = open_in_bin path in
            let s =
              Fun.protect
                ~finally:(fun () -> close_in_noerr ic)
                (fun () -> really_input_string ic (in_channel_length ic))
            in
            match Obs.Json.of_string (String.trim s) with
            | Error e -> Alcotest.fail e
            | Ok j ->
              checkb "reason" true
                (member_exn "reason" j = Obs.Json.String "disk")));
    case "node-limit trip leaves budget.trip in the recorder tail"
      (fun () ->
        with_fresh_ring (fun () ->
            let c =
              Circuit.of_string
                "(or (and a b c d) (and b c d e) (and c d e f) (and d e f g))"
            in
            match
              Pipeline.compile ~budget:(Budget.create ~max_nodes:3 ())
                ~vtree_strategy:`Right c
            with
            | Ok _ -> Alcotest.fail "expected a node-limit trip"
            | Error e ->
              checkb "node limit" true (e = Ctwsdd_error.Node_limit);
              let j = Postmortem.json ~reason:"node_limit" () in
              (match member_exn "entries" (member_exn "flight_recorder" j) with
               | Obs.Json.List entries ->
                 checkb "budget.trip in postmortem tail" true
                   (List.exists
                      (fun e ->
                        Obs.Json.member "name" e
                        = Some (Obs.Json.String "budget.trip"))
                      entries)
               | _ -> Alcotest.fail "entries not a list")));
    case "a raising census provider is contained" (fun () ->
        Postmortem.add_census_provider (fun () -> failwith "boom");
        let j = Postmortem.json ~reason:"t" () in
        match member_exn "managers" j with
        | Obs.Json.Obj fields ->
          checkb "error embedded" true
            (List.exists
               (fun (k, _) -> k = "census_provider_error")
               fields)
        | _ -> Alcotest.fail "managers not an object");
  ]

(* A tiny line-level check of the Prometheus/OpenMetrics text format:
   every non-comment line is `name[{labels}] value` with a parseable
   value and balanced quotes. *)
let check_exposition_line line =
  if line = "" || line.[0] = '#' then ()
  else
    match String.rindex_opt line ' ' with
    | None -> Alcotest.failf "no value separator in %S" line
    | Some i ->
      let value = String.sub line (i + 1) (String.length line - i - 1) in
      (match float_of_string_opt value with
       | Some _ -> ()
       | None ->
         if value <> "+Inf" then Alcotest.failf "bad value in %S" line);
      let quotes =
        String.fold_left
          (fun (n, esc) c ->
            if esc then (n, false)
            else if c = '\\' then (n, true)
            else if c = '"' then (n + 1, false)
            else (n, false))
          (0, false) (String.sub line 0 i)
      in
      if fst quotes mod 2 <> 0 then Alcotest.failf "unbalanced quotes in %S" line

let openmetrics_suite =
  [
    case "label escaping" (fun () ->
        checks "backslash" "a\\\\b" (Openmetrics.escape_label "a\\b");
        checks "quote" "a\\\"b" (Openmetrics.escape_label "a\"b");
        checks "newline" "a\\nb" (Openmetrics.escape_label "a\nb");
        checks "plain" "plain" (Openmetrics.escape_label "plain"));
    case "render is well-formed and ends with EOF" (fun () ->
        with_obs (fun () ->
            Obs.incr ~by:7 "om.counter";
            Obs.gauge_set "om.gauge" 3;
            Obs.hist_record "om.hist" 5;
            Obs.hist_record "om.hist" 900;
            let text = Openmetrics.render () in
            let lines = String.split_on_char '\n' text in
            List.iter check_exposition_line lines;
            checkb "ends with EOF" true
              (match List.rev lines with
               | "" :: "# EOF" :: _ -> true
               | _ -> false);
            checkb "counter exported" true
              (List.mem "ctwsdd_counter_total{name=\"om.counter\"} 7" lines);
            checkb "gauge exported" true
              (List.mem "ctwsdd_gauge{name=\"om.gauge\"} 3" lines);
            checkb "run info exported" true
              (List.mem
                 (Printf.sprintf "ctwsdd_run_info{run_id=\"%s\"} 1"
                    (Obs.run_id ()))
                 lines);
            (* Histogram buckets are cumulative and +Inf equals count. *)
            let bucket_counts =
              List.filter_map
                (fun l ->
                  let prefix = "ctwsdd_histogram_bucket{name=\"om.hist\"" in
                  if String.length l >= String.length prefix
                     && String.sub l 0 (String.length prefix) = prefix
                  then
                    String.rindex_opt l ' '
                    |> Option.map (fun i ->
                           int_of_string
                             (String.sub l (i + 1) (String.length l - i - 1)))
                  else None)
                lines
            in
            checkb "has buckets" true (bucket_counts <> []);
            checkb "cumulative" true
              (bucket_counts = List.sort compare bucket_counts);
            checki "+Inf equals count" 2
              (List.nth bucket_counts (List.length bucket_counts - 1))));
    case "labels with hostile characters stay parseable" (fun () ->
        with_obs (fun () ->
            Obs.with_run_id "r-\"quoted\\evil\"\n" (fun () ->
                let text = Openmetrics.render () in
                List.iter check_exposition_line
                  (String.split_on_char '\n' text))));
    case "write replaces the file atomically" (fun () ->
        let path = Filename.temp_file "ctwsdd_om" ".prom" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Openmetrics.write path;
            Openmetrics.write path;
            let ic = open_in_bin path in
            let s =
              Fun.protect
                ~finally:(fun () -> close_in_noerr ic)
                (fun () -> really_input_string ic (in_channel_length ic))
            in
            checkb "nonempty" true (String.length s > 0);
            checkb "terminated" true
              (String.length s >= 6
              && String.sub s (String.length s - 6) 6 = "# EOF\n");
            checkb "no tmp litter" true
              (Sys.readdir (Filename.dirname path)
              |> Array.for_all (fun f ->
                     not
                       (String.length f > String.length ".ctwsdd_om"
                       && String.sub f 0 1 = "."
                       && Filename.check_suffix f ".tmp"
                       && String.length f >= 10
                       && String.sub f 1 9 = "ctwsdd_om")))));
  ]

let suites =
  [
    ("flight recorder", recorder_suite);
    ("run ids", run_id_suite);
    ("postmortem", postmortem_suite);
    ("openmetrics", openmetrics_suite);
  ]
