open Test_util

let comm_suite =
  [
    case "matrix of AND" (fun () ->
        let f = Boolfun.and_ (Boolfun.var "x") (Boolfun.var "y") in
        let m = Comm.matrix f [ "x" ] [ "y" ] in
        (* rows indexed by x = 0, 1; cols by y = 0, 1 *)
        checki "m00" 0 m.(0).(0);
        checki "m11" 1 m.(1).(1);
        checki "rank" 1 (Comm.rank m));
    case "rank of identity and ones" (fun () ->
        let id n = Array.init n (fun i -> Array.init n (fun j -> if i = j then 1 else 0)) in
        checki "I4" 4 (Comm.rank (id 4));
        let ones = Array.make_matrix 3 5 1 in
        checki "ones" 1 (Comm.rank ones);
        checki "zeros" 0 (Comm.rank (Array.make_matrix 3 3 0));
        checki "empty" 0 (Comm.rank [||]));
    case "rank needs no square matrix" (fun () ->
        let m = [| [| 1; 2; 3 |]; [| 2; 4; 6 |] |] in
        checki "rank 1" 1 (Comm.rank m);
        let m2 = [| [| 1; 0; 1 |]; [| 0; 1; 1 |] |] in
        checki "rank 2" 2 (Comm.rank m2));
    case "rank over rationals not GF(2)" (fun () ->
        (* This matrix has rank 2 over GF(2) but rank 3 over Q. *)
        let m = [| [| 1; 1; 0 |]; [| 1; 0; 1 |]; [| 0; 1; 1 |] |] in
        checki "rank 3" 3 (Comm.rank m));
    case "disjointness rank = 2^n (eq. 8)" (fun () ->
        checki "n=1" 2 (Comm.disjointness_rank 1);
        checki "n=2" 4 (Comm.disjointness_rank 2);
        checki "n=3" 8 (Comm.disjointness_rank 3);
        checki "n=4" 16 (Comm.disjointness_rank 4);
        checki "n=5" 32 (Comm.disjointness_rank 5));
    case "equality function has full rank" (fun () ->
        checki "EQ_3" 8 (Comm.cm_rank (Families.equality 3) (Families.xs 3) (Families.ys 3)));
    case "partition validation" (fun () ->
        let f = Boolfun.and_ (Boolfun.var "x") (Boolfun.var "y") in
        Alcotest.check_raises "raise"
          (Invalid_argument "Comm.matrix: (x1, x2) must partition the variables")
          (fun () -> ignore (Comm.matrix f [ "x" ] [ "x"; "y" ])));
    qtest "rank bounded by dimensions" QCheck2.Gen.(int_range 0 50) (fun seed ->
        let f = Boolfun.random ~seed (small_vars 4) in
        let r = Comm.cm_rank f [ "x01"; "x02" ] [ "x03"; "x04" ] in
        r >= 0 && r <= 4);
    qtest "theorem 2 bound at most 2^min-side" QCheck2.Gen.(int_range 0 30)
      (fun seed ->
        let f = Boolfun.random ~seed (small_vars 5) in
        Comm.theorem2_bound f [ "x01"; "x02" ] <= 4);
  ]

let suites = [ ("comm", comm_suite) ]
