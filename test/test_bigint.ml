open Test_util

let int_pair = QCheck2.Gen.(pair (int_range (-1000000) 1000000) (int_range (-1000000) 1000000))

let big_gen =
  (* Random big integers built from digit strings, including negatives. *)
  QCheck2.Gen.(
    map2
      (fun neg digits ->
        let s = String.concat "" (List.map string_of_int digits) in
        let s = if s = "" then "0" else s in
        Bigint.of_string (if neg then "-" ^ s else s))
      bool
      (list_size (int_range 1 12) (int_range 0 999)))

let suite =
  [
    case "of_int/to_int roundtrip" (fun () ->
        List.iter
          (fun n -> checki "roundtrip" n (Bigint.to_int_exn (Bigint.of_int n)))
          [ 0; 1; -1; 42; -12345; max_int / 2; min_int / 2; max_int; min_int + 1 ]);
    case "string roundtrip" (fun () ->
        List.iter
          (fun s -> checks "roundtrip" s Bigint.(to_string (of_string s)))
          [ "0"; "1"; "-1"; "123456789012345678901234567890"; "-9"; "10000000000000000000000" ]);
    case "leading zeros parse" (fun () ->
        check bigint "007" (Bigint.of_int 7) (Bigint.of_string "007"));
    case "pow2" (fun () ->
        checks "2^100" "1267650600228229401496703205376" (Bigint.to_string (Bigint.pow2 100)));
    case "pow" (fun () ->
        check bigint "3^7" (Bigint.of_int 2187) (Bigint.pow (Bigint.of_int 3) 7);
        check bigint "x^0" Bigint.one (Bigint.pow (Bigint.of_int 999) 0));
    case "factorial 30" (fun () ->
        let fact n =
          let rec go acc i =
            if i > n then acc else go (Bigint.mul acc (Bigint.of_int i)) (i + 1)
          in
          go Bigint.one 1
        in
        checks "30!" "265252859812191058636308480000000" (Bigint.to_string (fact 30)));
    case "division by zero" (fun () ->
        Alcotest.check_raises "raise" Division_by_zero (fun () ->
            ignore (Bigint.div Bigint.one Bigint.zero)));
    case "divexact rejects inexact" (fun () ->
        Alcotest.check_raises "raise"
          (Invalid_argument "Bigint.divexact: inexact division") (fun () ->
            ignore (Bigint.divexact (Bigint.of_int 7) (Bigint.of_int 2))));
    case "gcd" (fun () ->
        check bigint "gcd(12,18)" (Bigint.of_int 6)
          (Bigint.gcd (Bigint.of_int 12) (Bigint.of_int 18));
        check bigint "gcd(-12,18)" (Bigint.of_int 6)
          (Bigint.gcd (Bigint.of_int (-12)) (Bigint.of_int 18));
        check bigint "gcd(0,0)" Bigint.zero (Bigint.gcd Bigint.zero Bigint.zero));
    case "num_bits/testbit" (fun () ->
        checki "bits of 0" 0 (Bigint.num_bits Bigint.zero);
        checki "bits of 1" 1 (Bigint.num_bits Bigint.one);
        checki "bits of 2^100" 101 (Bigint.num_bits (Bigint.pow2 100));
        checkb "bit 100 of 2^100" true (Bigint.testbit (Bigint.pow2 100) 100);
        checkb "bit 99 of 2^100" false (Bigint.testbit (Bigint.pow2 100) 99));
    qtest "add agrees with int" int_pair (fun (a, b) ->
        Bigint.to_int_exn (Bigint.add (Bigint.of_int a) (Bigint.of_int b)) = a + b);
    qtest "sub agrees with int" int_pair (fun (a, b) ->
        Bigint.to_int_exn (Bigint.sub (Bigint.of_int a) (Bigint.of_int b)) = a - b);
    qtest "mul agrees with int" int_pair (fun (a, b) ->
        Bigint.to_int_exn (Bigint.mul (Bigint.of_int a) (Bigint.of_int b)) = a * b);
    qtest "divmod agrees with int"
      QCheck2.Gen.(pair (int_range (-100000) 100000) (int_range (-1000) 1000))
      (fun (a, b) ->
        b = 0
        ||
        let q, r = Bigint.divmod (Bigint.of_int a) (Bigint.of_int b) in
        Bigint.to_int_exn q = a / b && Bigint.to_int_exn r = a mod b);
    qtest "compare agrees with int" int_pair (fun (a, b) ->
        Bigint.compare (Bigint.of_int a) (Bigint.of_int b) = compare a b);
    qtest "add commutative (big)" QCheck2.Gen.(pair big_gen big_gen) (fun (a, b) ->
        Bigint.equal (Bigint.add a b) (Bigint.add b a));
    qtest "mul commutative (big)" QCheck2.Gen.(pair big_gen big_gen) (fun (a, b) ->
        Bigint.equal (Bigint.mul a b) (Bigint.mul b a));
    qtest "mul distributes over add (big)"
      QCheck2.Gen.(triple big_gen big_gen big_gen)
      (fun (a, b, c) ->
        Bigint.equal
          (Bigint.mul a (Bigint.add b c))
          (Bigint.add (Bigint.mul a b) (Bigint.mul a c)));
    qtest "divmod invariant (big)" QCheck2.Gen.(pair big_gen big_gen) (fun (a, b) ->
        Bigint.is_zero b
        ||
        let q, r = Bigint.divmod a b in
        Bigint.equal a (Bigint.add (Bigint.mul q b) r)
        && Bigint.compare (Bigint.abs r) (Bigint.abs b) < 0
        && (Bigint.is_zero r || Bigint.sign r = Bigint.sign a));
    qtest "string roundtrip (big)" big_gen (fun a ->
        Bigint.equal a (Bigint.of_string (Bigint.to_string a)));
    qtest "sub then add roundtrip (big)" QCheck2.Gen.(pair big_gen big_gen)
      (fun (a, b) -> Bigint.equal a (Bigint.add (Bigint.sub a b) b));
    qtest "shift_left is mul by 2^k" QCheck2.Gen.(pair big_gen (int_range 0 70))
      (fun (a, k) -> Bigint.equal (Bigint.shift_left a k) (Bigint.mul a (Bigint.pow2 k)));
    qtest "gcd divides both (big)" QCheck2.Gen.(pair big_gen big_gen) (fun (a, b) ->
        let g = Bigint.gcd a b in
        Bigint.is_zero g
        || (Bigint.is_zero (Bigint.rem a g) && Bigint.is_zero (Bigint.rem b g)));
  ]

let ratio_suite =
  [
    case "normalization" (fun () ->
        check ratio "2/4 = 1/2" (Ratio.of_ints 1 2) (Ratio.of_ints 2 4);
        check ratio "-1/-2 = 1/2" (Ratio.of_ints 1 2) (Ratio.of_ints (-1) (-2));
        checks "print" "-1/2" (Ratio.to_string (Ratio.of_ints 1 (-2))));
    case "arithmetic" (fun () ->
        check ratio "1/2+1/3" (Ratio.of_ints 5 6)
          (Ratio.add (Ratio.of_ints 1 2) (Ratio.of_ints 1 3));
        check ratio "1/2*2/3" (Ratio.of_ints 1 3)
          (Ratio.mul (Ratio.of_ints 1 2) (Ratio.of_ints 2 3));
        check ratio "(1/2)/(3/4)" (Ratio.of_ints 2 3)
          (Ratio.div (Ratio.of_ints 1 2) (Ratio.of_ints 3 4)));
    case "division by zero" (fun () ->
        Alcotest.check_raises "raise" Division_by_zero (fun () ->
            ignore (Ratio.div Ratio.one Ratio.zero)));
    qtest "field laws on small rationals"
      QCheck2.Gen.(
        quad (int_range (-50) 50) (int_range 1 50) (int_range (-50) 50) (int_range 1 50))
      (fun (a, b, c, d) ->
        let x = Ratio.of_ints a b and y = Ratio.of_ints c d in
        Ratio.equal (Ratio.add x y) (Ratio.add y x)
        && Ratio.equal (Ratio.sub (Ratio.add x y) y) x
        && Ratio.equal (Ratio.mul x y) (Ratio.mul y x));
    qtest "to_float consistent"
      QCheck2.Gen.(pair (int_range (-1000) 1000) (int_range 1 1000))
      (fun (a, b) ->
        abs_float (Ratio.to_float (Ratio.of_ints a b) -. (float_of_int a /. float_of_int b))
        < 1e-9);
  ]

let suites = [ ("bigint", suite); ("ratio", ratio_suite) ]
