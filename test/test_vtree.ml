open Test_util

let vars4 = [ "a"; "b"; "c"; "d" ]

let vtree_suite =
  [
    case "right linear structure" (fun () ->
        let t = Vtree.right_linear vars4 in
        checki "leaves" 4 (Vtree.num_leaves t);
        checki "nodes" 7 (Vtree.num_nodes t);
        checkb "right-linear" true (Vtree.is_right_linear t);
        Alcotest.(check (list string)) "order" vars4 (Vtree.leaf_order t));
    case "balanced structure" (fun () ->
        let t = Vtree.balanced vars4 in
        checkb "not right-linear" false (Vtree.is_right_linear t);
        Alcotest.(check (list string)) "vars" vars4 (Vtree.variables t));
    case "left linear" (fun () ->
        let t = Vtree.left_linear vars4 in
        checki "nodes" 7 (Vtree.num_nodes t);
        Alcotest.(check (list string)) "order" vars4 (Vtree.leaf_order t));
    case "vars_below" (fun () ->
        let t = Vtree.balanced vars4 in
        let r = Vtree.root t in
        Alcotest.(check (list string)) "root" vars4 (Vtree.vars_below t r);
        Alcotest.(check (list string)) "left" [ "a"; "b" ]
          (Vtree.vars_below t (Vtree.left t r));
        checki "count right" 2 (Vtree.num_vars_below t (Vtree.right t r)));
    case "ancestry and lca" (fun () ->
        let t = Vtree.balanced vars4 in
        let r = Vtree.root t in
        let la = Vtree.leaf_of_var t "a" and lc = Vtree.leaf_of_var t "c" in
        checkb "root ancestor of all" true (Vtree.is_ancestor t r la);
        checkb "reflexive" true (Vtree.is_ancestor t la la);
        checkb "leaf not ancestor" false (Vtree.is_ancestor t la lc);
        checki "lca(a,c) = root" r (Vtree.lca t la lc);
        checkb "a in left of root" true (Vtree.in_left_subtree t r la);
        checkb "c in right of root" true (Vtree.in_right_subtree t r lc));
    case "parent and depth" (fun () ->
        let t = Vtree.right_linear [ "x"; "y" ] in
        let r = Vtree.root t in
        checki "depth root" 0 (Vtree.depth t r);
        checki "depth leaf" 1 (Vtree.depth t (Vtree.leaf_of_var t "x"));
        Alcotest.(check (option int)) "parent of root" None (Vtree.parent t r);
        Alcotest.(check (option int)) "parent of leaf" (Some r)
          (Vtree.parent t (Vtree.leaf_of_var t "x")));
    case "duplicate variables rejected" (fun () ->
        Alcotest.check_raises "raise" (Invalid_argument "Vtree.right_linear: duplicate variables")
          (fun () -> ignore (Vtree.right_linear [ "a"; "a" ])));
    case "shape roundtrip" (fun () ->
        let t = Vtree.balanced vars4 in
        checkb "roundtrip" true (Vtree.equal t (Vtree.of_shape (Vtree.to_shape t))));
    case "enumerate counts" (fun () ->
        checki "1 var" 1 (List.length (Vtree.enumerate [ "a" ]));
        checki "2 vars" 2 (List.length (Vtree.enumerate [ "a"; "b" ]));
        checki "3 vars" 12 (List.length (Vtree.enumerate [ "a"; "b"; "c" ]));
        (* ordered binary trees over n labeled leaves: (2n-2)!/(n-1)! ... for
           n=4: 120 *)
        checki "4 vars" 120 (List.length (Vtree.enumerate vars4)));
    case "in-order node list" (fun () ->
        let t = Vtree.right_linear [ "a"; "b"; "c" ] in
        checki "5 nodes" 5 (List.length (Vtree.nodes t));
        (* every node appears exactly once *)
        checki "unique" 5 (List.length (List.sort_uniq compare (Vtree.nodes t))));
    qtest "random vtrees well-formed" QCheck2.Gen.(int_range 0 60) (fun seed ->
        let t = Vtree.random ~seed (small_vars 6) in
        Vtree.num_nodes t = 11
        && Vtree.variables t = small_vars 6
        && List.length (Vtree.nodes t) = 11);
    qtest "leaf intervals consistent with vars_below" QCheck2.Gen.(int_range 0 40)
      (fun seed ->
        let t = Vtree.random ~seed (small_vars 5) in
        List.for_all
          (fun v ->
            List.length (Vtree.vars_below t v) = Vtree.num_vars_below t v)
          (Vtree.nodes t));
  ]

let suites = [ ("vtree", vtree_suite) ]
