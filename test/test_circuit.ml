open Test_util

let circuit_suite =
  [
    case "builder basics" (fun () ->
        let b = Circuit.Builder.create () in
        let x = Circuit.Builder.var b "x" in
        let y = Circuit.Builder.var b "y" in
        let g = Circuit.Builder.and_ b [ x; Circuit.Builder.not_ b y ] in
        let c = Circuit.Builder.build b g in
        Alcotest.(check (list string)) "vars" [ "x"; "y" ] (Circuit.variables c);
        checkb "eval (1,0)" true
          (Circuit.eval c (Boolfun.assignment_of_list [ ("x", true); ("y", false) ]));
        checkb "eval (1,1)" false
          (Circuit.eval c (Boolfun.assignment_of_list [ ("x", true); ("y", true) ])));
    case "hash consing shares gates" (fun () ->
        let b = Circuit.Builder.create () in
        let x = Circuit.Builder.var b "x" in
        let x' = Circuit.Builder.var b "x" in
        checki "same id" x x';
        let g1 = Circuit.Builder.and_ b [ x; Circuit.Builder.var b "y" ] in
        let g2 = Circuit.Builder.and_ b [ Circuit.Builder.var b "y"; x ] in
        checki "commutative sharing" g1 g2);
    case "singleton and empty gates collapse" (fun () ->
        let b = Circuit.Builder.create () in
        let x = Circuit.Builder.var b "x" in
        checki "and [x] = x" x (Circuit.Builder.and_ b [ x ]);
        let t = Circuit.Builder.and_ b [] in
        let c = Circuit.Builder.build b t in
        check boolfun "and [] = true" Boolfun.tt (Circuit.to_boolfun c));
    case "build garbage-collects" (fun () ->
        let b = Circuit.Builder.create () in
        let x = Circuit.Builder.var b "x" in
        let _dead = Circuit.Builder.and_ b [ x; Circuit.Builder.var b "y" ] in
        let c = Circuit.Builder.build b x in
        checki "only x survives" 1 (Circuit.size c));
    case "to_boolfun on a formula" (fun () ->
        let c = Circuit.of_string "(or (and x y) (and (not x) z))" in
        let f = Circuit.to_boolfun c in
        checki "models" 4 (Boolfun.count_models_int f));
    case "text roundtrip" (fun () ->
        let s = "(or (and x (not y)) (and (not x) y))" in
        let c = Circuit.of_string s in
        let c' = Circuit.of_string (Circuit.to_string c) in
        checkb "equivalent" true (Circuit.equivalent c c'));
    case "parse errors" (fun () ->
        List.iter
          (fun s ->
            match Circuit.of_string s with
            | exception Invalid_argument _ -> ()
            | _ -> Alcotest.failf "expected parse failure on %S" s)
          [ ""; "(and x"; "(foo x y)"; "(not x y)"; ")"; "(and x) y" ]);
    case "nnf conversion" (fun () ->
        let c = Circuit.of_string "(not (and x (or y (not z))))" in
        let n = Circuit.to_nnf c in
        checkb "is nnf" true (Circuit.is_nnf n);
        checkb "equivalent" true (Circuit.equivalent c n);
        checkb "original not nnf" false (Circuit.is_nnf c));
    case "simplify constant propagation" (fun () ->
        let c = Circuit.of_string "(or (and x false) (and y true))" in
        let s = Circuit.simplify c in
        checkb "equivalent" true (Circuit.equivalent c s);
        checkb "smaller" true (Circuit.size s < Circuit.size c));
    case "of_cnf / of_dnf" (fun () ->
        let cnf = Circuit.of_cnf [ [ ("x", true); ("y", false) ]; [ ("y", true) ] ] in
        let f = Circuit.to_boolfun cnf in
        checki "cnf models" 1 (Boolfun.count_models_int f);
        let dnf = Circuit.of_dnf [ [ ("x", true); ("y", false) ]; [ ("y", true) ] ] in
        checki "dnf models" 3 (Boolfun.count_models_int (Circuit.to_boolfun dnf)));
    case "underlying graph of a wire" (fun () ->
        let c = Circuit.of_string "(and x y)" in
        let g = Circuit.underlying_graph c in
        checki "3 gates" 3 (Ugraph.num_vertices g);
        checki "2 wires" 2 (Ugraph.num_edges g));
    case "treewidth of tree-shaped formula" (fun () ->
        let c = Circuit.of_string "(or (and x y) (and z w))" in
        checki "tw" 1 (Circuit.treewidth_exact c));
    case "rename_vars" (fun () ->
        let c = Circuit.of_string "(and x y)" in
        let c' = Circuit.rename_vars c [ ("x", "a") ] in
        Alcotest.(check (list string)) "vars" [ "a"; "y" ] (Circuit.variables c'));
    qtest "to_nnf preserves semantics" QCheck2.Gen.(int_range 0 60) (fun seed ->
        let c = Generators.random_formula ~seed ~vars:4 ~depth:5 in
        Circuit.equivalent c (Circuit.to_nnf c));
    qtest "simplify preserves semantics" QCheck2.Gen.(int_range 0 60) (fun seed ->
        let c = Generators.random_formula ~seed ~vars:4 ~depth:5 in
        Circuit.equivalent c (Circuit.simplify c));
    qtest "eval agrees with to_boolfun" QCheck2.Gen.(int_range 0 60) (fun seed ->
        let c = Generators.random_formula ~seed ~vars:4 ~depth:4 in
        let f = Circuit.to_boolfun c in
        List.for_all
          (fun a -> Circuit.eval c a = Boolfun.eval f a)
          (Boolfun.all_assignments (Circuit.variables c)));
  ]

let generators_suite =
  [
    case "chain implication circuits bounded width" (fun () ->
        let c = Generators.chain_implications 6 in
        checkb "equiv to family" true
          (Boolfun.equal (Circuit.to_boolfun c) (Families.chain_implications 6));
        let w, td = Circuit.treewidth_upper c in
        checkb "valid decomposition" true (Treedec.is_valid (Circuit.underlying_graph c) td);
        checkb "small width" true (w <= 3));
    case "parity chain equals parity" (fun () ->
        let c = Generators.parity_chain 5 in
        checkb "equiv" true (Boolfun.equal (Circuit.to_boolfun c) (Families.parity 5)));
    case "h circuits match h functions" (fun () ->
        checkb "h0" true
          (Boolfun.equal
             (Circuit.to_boolfun (Generators.h0_circuit 2))
             (Families.h0 ~k:2 2));
        checkb "h1" true
          (Boolfun.equal
             (Circuit.to_boolfun (Generators.hi_circuit ~i:1 2))
             (Families.hi ~k:2 ~i:1 2));
        checkb "hk" true
          (Boolfun.equal
             (Circuit.to_boolfun (Generators.hk_circuit ~k:2 2))
             (Families.hk ~k:2 2)));
    case "disjointness circuit" (fun () ->
        checkb "equiv" true
          (Boolfun.equal
             (Circuit.to_boolfun (Generators.disjointness_circuit 3))
             (Families.disjointness 3)));
    case "isa circuit matches isa semantics" (fun () ->
        checkb "isa5" true
          (Boolfun.equal (Circuit.to_boolfun (Generators.isa_circuit 5)) (Families.isa 5)));
    case "random window circuits have bounded treewidth" (fun () ->
        let c = Generators.random_window ~seed:3 ~window:3 ~vars:4 ~gates:10 in
        let w, _ = Circuit.treewidth_upper c in
        checkb "w <= window + 1" true (w <= 4));
    case "ladder is small-treewidth but grows" (fun () ->
        let c = Generators.ladder ~tracks:2 4 in
        let w, _ = Circuit.treewidth_upper c in
        checkb "bounded" true (w <= 8);
        checkb "has vars" true (Circuit.num_vars c >= 8));
  ]

let tseitin_suite =
  [
    case "projected models agree" (fun () ->
        let c = Circuit.of_string "(or (and x y) (not z))" in
        let cnf = Tseitin.transform c in
        checkb "agree" true (Tseitin.projected_models_agree c cnf));
    case "gate vars are fresh" (fun () ->
        let c = Circuit.of_string "(and x y)" in
        let cnf = Tseitin.transform c in
        checkb "disjoint" true
          (List.for_all (fun g -> not (List.mem g (Circuit.variables c))) cnf.Tseitin.gate_vars));
    case "primal graph treewidth tracks circuit treewidth" (fun () ->
        let c = Generators.chain_implications 5 in
        let cnf = Tseitin.transform c in
        let g, _ = Tseitin.primal_graph cnf in
        let w, _ = Treewidth.upper_bound g in
        checkb "bounded" true (w <= 6));
    qtest "tseitin projection on random formulas" QCheck2.Gen.(int_range 0 40)
      (fun seed ->
        let c = Generators.random_formula ~seed ~vars:4 ~depth:4 in
        Tseitin.projected_models_agree c (Tseitin.transform c));
  ]

let pi_suite =
  [
    case "prime implicants of x&y + x&~y" (fun () ->
        (* f = x: single prime implicant [x]. *)
        let f =
          Boolfun.or_
            (Boolfun.and_ (Boolfun.var "x") (Boolfun.var "y"))
            (Boolfun.and_ (Boolfun.var "x") (Boolfun.not_ (Boolfun.var "y")))
        in
        Alcotest.(check (list (list (pair string bool))))
          "pi" [ [ ("x", true) ] ] (Prime_implicants.of_boolfun f));
    case "prime implicants of xor" (fun () ->
        let f = Boolfun.xor_ (Boolfun.var "x") (Boolfun.var "y") in
        checki "two PIs" 2 (List.length (Prime_implicants.of_boolfun f)));
    case "majority3 has three PIs" (fun () ->
        let pis = Prime_implicants.of_boolfun (Families.majority 3) in
        checki "count" 3 (List.length pis);
        checkb "each size 2" true (List.for_all (fun t -> List.length t = 2) pis));
    qtest "PIs are prime and cover" QCheck2.Gen.(int_range 0 50) (fun seed ->
        let f = Boolfun.random ~seed (small_vars 4) in
        let pis = Prime_implicants.of_boolfun f in
        Prime_implicants.covers f pis
        && List.for_all (Prime_implicants.is_prime f) pis);
  ]

let suites =
  [
    ("circuit", circuit_suite);
    ("generators", generators_suite);
    ("tseitin", tseitin_suite);
    ("prime_implicants", pi_suite);
  ]
