open Test_util

let vars n = small_vars n

let managers_for n =
  [
    ("right-linear", Sdd.manager (Vtree.right_linear (vars n)));
    ("balanced", Sdd.manager (Vtree.balanced (vars n)));
    ("random", Sdd.manager (Vtree.random ~seed:42 (vars n)));
  ]

let validate_ok m node =
  match Sdd.validate m node with
  | Ok () -> true
  | Error msg -> Alcotest.failf "invalid SDD: %s" msg

let sdd_suite =
  [
    case "constants and literals" (fun () ->
        let m = Sdd.manager (Vtree.balanced [ "x"; "y" ]) in
        checkb "T" true (Sdd.is_true m (Sdd.true_ m));
        checkb "F" true (Sdd.is_false m (Sdd.false_ m));
        let x = Sdd.literal m "x" true in
        checkb "x & ~x = F" true
          (Sdd.is_false m (Sdd.conjoin m x (Sdd.negate m x)));
        checkb "x | ~x = T" true (Sdd.is_true m (Sdd.disjoin m x (Sdd.negate m x))));
    case "canonicity: equivalent formulas share handles" (fun () ->
        List.iter
          (fun (_, m) ->
            let l v = Sdd.literal m v true in
            let a = Sdd.disjoin m (Sdd.conjoin m (l "x01") (l "x02"))
                      (Sdd.conjoin m (l "x01") (l "x03")) in
            let b = Sdd.conjoin m (l "x01") (Sdd.disjoin m (l "x02") (l "x03")) in
            checkb "distribution" true (Sdd.equal a b))
          (managers_for 3));
    case "negation involution" (fun () ->
        let m = Sdd.manager (Vtree.balanced (vars 4)) in
        let f = Boolfun.random ~seed:7 (vars 4) in
        let node = Sdd.of_boolfun_naive m f in
        checkb "~~f = f" true (Sdd.equal node (Sdd.negate m (Sdd.negate m node))));
    case "model count simple" (fun () ->
        let m = Sdd.manager (Vtree.balanced [ "x"; "y"; "z" ]) in
        let f = Sdd.disjoin m (Sdd.literal m "x" true) (Sdd.literal m "y" true) in
        check bigint "6" (Bigint.of_int 6) (Sdd.model_count m f);
        check bigint "8" (Bigint.of_int 8) (Sdd.model_count m (Sdd.true_ m)));
    case "probability" (fun () ->
        let m = Sdd.manager (Vtree.balanced [ "x"; "y" ]) in
        let f = Sdd.disjoin m (Sdd.literal m "x" true) (Sdd.literal m "y" true) in
        Alcotest.(check (float 1e-9)) "3/4" 0.75 (Sdd.probability m f (fun _ -> 0.5));
        check ratio "3/4 exact" (Ratio.of_ints 3 4)
          (Sdd.probability_ratio m f (fun _ -> Ratio.of_ints 1 2)));
    case "condition" (fun () ->
        let m = Sdd.manager (Vtree.balanced (vars 3)) in
        let f = Boolfun.random ~seed:21 (vars 3) in
        let node = Sdd.of_boolfun_naive m f in
        let c = Sdd.condition m node "x02" true in
        checkb "matches boolfun restrict" true
          (Boolfun.equal
             (Boolfun.lift (Boolfun.restrict f [ ("x02", true) ]) (vars 3))
             (Sdd.to_boolfun m c)));
    case "any_model" (fun () ->
        let m = Sdd.manager (Vtree.balanced (vars 3)) in
        Alcotest.(check (option (list (pair string bool))))
          "F" None (Sdd.any_model m (Sdd.false_ m));
        let f =
          Sdd.conjoin m (Sdd.literal m "x01" true) (Sdd.literal m "x03" false)
        in
        match Sdd.any_model m f with
        | None -> Alcotest.fail "expected a model"
        | Some asg ->
          checkb "model satisfies" true
            (Sdd.eval m f (Boolfun.assignment_of_list asg)));
    case "width on right-linear vtree is OBDD-like" (fun () ->
        (* Chain implications have constant SDD width on the right-linear
           vtree (= constant OBDD width). *)
        let n = 8 in
        let vs = List.init n (fun i -> Families.x (i + 1)) in
        let m = Sdd.manager (Vtree.right_linear vs) in
        let node = Sdd.compile_circuit m (Generators.chain_implications n) in
        checkb "width small" true (Sdd.width m node <= 4);
        checkb "size linear-ish" true (Sdd.size m node <= 6 * n));
    case "to_nnf_circuit is equivalent and structured" (fun () ->
        let m = Sdd.manager (Vtree.balanced (vars 4)) in
        let f = Boolfun.random ~seed:33 (vars 4) in
        let node = Sdd.of_boolfun_naive m f in
        let c = Sdd.to_nnf_circuit m node in
        checkb "nnf" true (Circuit.is_nnf c);
        checkb "equivalent" true
          (Boolfun.equal (Boolfun.lift (Circuit.to_boolfun c) (vars 4))
             (Sdd.to_boolfun m node)));
    qtest "of_boolfun_naive roundtrips" QCheck2.Gen.(int_range 0 60) (fun seed ->
        let f = Boolfun.random ~seed (vars 4) in
        List.for_all
          (fun (_, m) ->
            Boolfun.equal f (Sdd.to_boolfun m (Sdd.of_boolfun_naive m f)))
          (managers_for 4));
    qtest "validate holds on random functions" QCheck2.Gen.(int_range 0 40)
      (fun seed ->
        let f = Boolfun.random ~seed (vars 4) in
        List.for_all
          (fun (_, m) -> validate_ok m (Sdd.of_boolfun_naive m f))
          (managers_for 4));
    qtest "compile_circuit agrees with circuit semantics"
      QCheck2.Gen.(int_range 0 60)
      (fun seed ->
        let c = Generators.random_formula ~seed ~vars:4 ~depth:5 in
        let m = Sdd.manager (Vtree.random ~seed:(seed * 3 + 1) (vars 4)) in
        let node = Sdd.compile_circuit m c in
        Boolfun.equal
          (Boolfun.lift (Circuit.to_boolfun c) (vars 4))
          (Sdd.to_boolfun m node))
      ~count:60;
    qtest "apply de morgan" QCheck2.Gen.(int_range 0 40) (fun seed ->
        let m = Sdd.manager (Vtree.balanced (vars 4)) in
        let f = Sdd.of_boolfun_naive m (Boolfun.random ~seed (vars 4)) in
        let g = Sdd.of_boolfun_naive m (Boolfun.random ~seed:(seed + 777) (vars 4)) in
        Sdd.equal (Sdd.negate m (Sdd.conjoin m f g))
          (Sdd.disjoin m (Sdd.negate m f) (Sdd.negate m g)));
    qtest "model count agrees with boolfun" QCheck2.Gen.(int_range 0 50) (fun seed ->
        let f = Boolfun.random ~seed (vars 5) in
        let m = Sdd.manager (Vtree.random ~seed:(seed + 13) (vars 5)) in
        Bigint.to_int_exn (Sdd.model_count m (Sdd.of_boolfun_naive m f))
        = Boolfun.count_models_int f);
    qtest "probability agrees with weighted enumeration"
      QCheck2.Gen.(int_range 0 30)
      (fun seed ->
        let f = Boolfun.random ~seed (vars 4) in
        let m = Sdd.manager (Vtree.balanced (vars 4)) in
        let node = Sdd.of_boolfun_naive m f in
        let w v = match v with "x01" -> 0.9 | "x02" -> 0.4 | "x03" -> 0.25 | _ -> 0.5 in
        let brute =
          List.fold_left
            (fun acc asg ->
              if Boolfun.eval f asg then
                acc
                +. Boolfun.Smap.fold
                     (fun v b p -> p *. (if b then w v else 1.0 -. w v))
                     asg 1.0
              else acc)
            0.0
            (Boolfun.all_assignments (vars 4))
        in
        abs_float (Sdd.probability m node w -. brute) < 1e-9);
    qtest "conjoin size never exceeds product bound" QCheck2.Gen.(int_range 0 20)
      (fun seed ->
        let m = Sdd.manager (Vtree.balanced (vars 4)) in
        let f = Sdd.of_boolfun_naive m (Boolfun.random ~seed (vars 4)) in
        let g = Sdd.of_boolfun_naive m (Boolfun.random ~seed:(seed + 3) (vars 4)) in
        let h = Sdd.conjoin m f g in
        (* Polytime apply bound: |f∧g| = O(|f|·|g|) (sizes +1 for literals). *)
        Sdd.size m h <= (Sdd.size m f + 2) * (Sdd.size m g + 2) * 4);
  ]

let suites = [ ("sdd", sdd_suite) ]
