open Test_util

let a_of = Boolfun.assignment_of_list

let boolfun_suite =
  [
    case "constants and literals" (fun () ->
        checkb "tt" true (Boolfun.eval Boolfun.tt (a_of []));
        checkb "ff" false (Boolfun.eval Boolfun.ff (a_of []));
        checkb "x true" true (Boolfun.eval (Boolfun.var "x") (a_of [ ("x", true) ]));
        checkb "x false" false (Boolfun.eval (Boolfun.var "x") (a_of [ ("x", false) ])));
    case "connectives" (fun () ->
        let x = Boolfun.var "x" and y = Boolfun.var "y" in
        let f = Boolfun.and_ x (Boolfun.not_ y) in
        checkb "x & ~y at (1,0)" true (Boolfun.eval f (a_of [ ("x", true); ("y", false) ]));
        checkb "x & ~y at (1,1)" false (Boolfun.eval f (a_of [ ("x", true); ("y", true) ]));
        checki "models of xor" 2 (Boolfun.count_models_int (Boolfun.xor_ x y));
        checki "models of iff" 2 (Boolfun.count_models_int (Boolfun.iff x y)));
    case "variable lifting in binops" (fun () ->
        let f = Boolfun.or_ (Boolfun.var "a") (Boolfun.var "b") in
        Alcotest.(check (list string)) "vars" [ "a"; "b" ] (Boolfun.variables f);
        checki "3 models" 3 (Boolfun.count_models_int f));
    case "restrict = cofactor (paper Example 1)" (fun () ->
        (* F(x,y) = x -> y.  Cofactors relative to y: F(0,y) ≡ ⊤, F(1,y) ≡ y.
           Cofactors relative to x: F(x,0) ≡ ¬x, F(x,1) ≡ ⊤. *)
        let f = Families.implication in
        check boolfun "F(0,y)" (Boolfun.const [ "y" ] true)
          (Boolfun.restrict f [ ("x", false) ]);
        check boolfun "F(1,y)" (Boolfun.var "y") (Boolfun.restrict f [ ("x", true) ]);
        check boolfun "F(x,0)" (Boolfun.not_ (Boolfun.var "x"))
          (Boolfun.restrict f [ ("y", false) ]);
        check boolfun "F(x,1)" (Boolfun.const [ "x" ] true)
          (Boolfun.restrict f [ ("y", true) ]));
    case "cofactors_relative (paper Example 1 counts)" (fun () ->
        let f = Families.implication in
        checki "relative to y" 2 (List.length (Boolfun.cofactors_relative f [ "x" ]));
        checki "relative to x" 2 (List.length (Boolfun.cofactors_relative f [ "y" ]));
        checki "relative to both" 2
          (List.length (Boolfun.cofactors_relative f [ "x"; "y" ]));
        checki "relative to nothing" 1 (List.length (Boolfun.cofactors_relative f [])));
    case "factors of implication (paper Example 3)" (fun () ->
        (* G(x) ≡ x is the factor of x→y relative to x inducing cofactor y;
           G(x) ≡ ¬x induces cofactor ⊤. *)
        let f = Families.implication in
        let fs = Boolfun.factors f [ "x" ] in
        checki "two factors" 2 (List.length fs);
        let for_cof c =
          List.find (fun (_, cof) -> Boolfun.equal cof c) fs |> fst
        in
        check boolfun "factor for cofactor y" (Boolfun.var "x") (for_cof (Boolfun.var "y"));
        check boolfun "factor for cofactor T" (Boolfun.not_ (Boolfun.var "x"))
          (for_cof (Boolfun.const [ "y" ] true)));
    case "factor vs cofactor distinction (paper Example 4)" (fun () ->
        let f = Families.implication in
        let cofs = Boolfun.cofactors_relative f [ "y" ] in
        (* x is a factor of F relative to x but not a cofactor relative to x. *)
        checkb "x not among cofactors" false
          (List.exists (Boolfun.equal (Boolfun.var "x")) cofs));
    case "support and depends_on" (fun () ->
        let f = Boolfun.or_ (Boolfun.var "x") (Boolfun.and_ (Boolfun.var "y") (Boolfun.not_ (Boolfun.var "y"))) in
        checkb "depends on x" true (Boolfun.depends_on f "x");
        checkb "not on y" false (Boolfun.depends_on f "y");
        Alcotest.(check (list string)) "support" [ "x" ] (Boolfun.support f));
    case "rename" (fun () ->
        let f = Boolfun.and_ (Boolfun.var "a") (Boolfun.var "b") in
        let g = Boolfun.rename f [ ("a", "p"); ("b", "q") ] in
        Alcotest.(check (list string)) "vars" [ "p"; "q" ] (Boolfun.variables g);
        checkb "eval" true (Boolfun.eval g (a_of [ ("p", true); ("q", true) ])));
    case "quantifiers" (fun () ->
        let f = Boolfun.and_ (Boolfun.var "x") (Boolfun.var "y") in
        check boolfun "exists x (x&y)" (Boolfun.var "y") (Boolfun.exists_ "x" f);
        check boolfun "forall x (x&y)" (Boolfun.const [ "y" ] false)
          (Boolfun.forall "x" f));
    case "of_models / models roundtrip" (fun () ->
        let f = Families.majority 3 in
        let g = Boolfun.of_models (Boolfun.variables f) (Boolfun.models f) in
        check boolfun "roundtrip" f g);
    qtest "factors partition the Y-space (eq. 10)" QCheck2.Gen.(int_range 0 80)
      (fun seed ->
        let f = Boolfun.random ~seed (small_vars 5) in
        let y = [ "x01"; "x03"; "x05" ] in
        let fs = List.map fst (Boolfun.factors f y) in
        (* Disjoint union of factor models covers all assignments of y. *)
        let total = List.fold_left (fun n g -> n + Boolfun.count_models_int g) 0 fs in
        let pairwise_disjoint =
          let rec go = function
            | [] -> true
            | g :: rest ->
              List.for_all
                (fun h -> Boolfun.count_models_int (Boolfun.and_ g h) = 0)
                rest
              && go rest
          in
          go fs
        in
        total = 8 && pairwise_disjoint);
    qtest "factors relative to irrelevant vars ignored (eq. 9)"
      QCheck2.Gen.(int_range 0 40)
      (fun seed ->
        let f = Boolfun.random ~seed (small_vars 4) in
        Boolfun.num_factors f [ "x01"; "x02"; "w99" ]
        = Boolfun.num_factors f [ "x01"; "x02" ]);
    qtest "cofactor of cofactor composes" QCheck2.Gen.(int_range 0 40) (fun seed ->
        let f = Boolfun.random ~seed (small_vars 5) in
        Boolfun.equal
          (Boolfun.restrict (Boolfun.restrict f [ ("x01", true) ]) [ ("x02", false) ])
          (Boolfun.restrict f [ ("x01", true); ("x02", false) ]));
    qtest "shannon expansion" QCheck2.Gen.(int_range 0 40) (fun seed ->
        let f = Boolfun.random ~seed (small_vars 5) in
        let x = Boolfun.var "x01" in
        let expansion =
          Boolfun.or_
            (Boolfun.and_ x (Boolfun.restrict f [ ("x01", true) ]))
            (Boolfun.and_ (Boolfun.not_ x) (Boolfun.restrict f [ ("x01", false) ]))
        in
        Boolfun.equal f expansion);
    qtest "de morgan" QCheck2.Gen.(int_range 0 40) (fun seed ->
        let f = Boolfun.random ~seed (small_vars 4) in
        let g = Boolfun.random ~seed:(seed + 5000) (small_vars 4) in
        Boolfun.equal (Boolfun.not_ (Boolfun.and_ f g))
          (Boolfun.or_ (Boolfun.not_ f) (Boolfun.not_ g)));
    qtest "double negation" QCheck2.Gen.(int_range 0 40) (fun seed ->
        let f = Boolfun.random ~seed (small_vars 5) in
        Boolfun.equal f (Boolfun.not_ (Boolfun.not_ f)));
  ]

let families_suite =
  [
    case "disjointness counts" (fun () ->
        (* D_n has 3^n models: each pair (x_i,y_i) excludes (1,1). *)
        checki "D_1" 3 (Boolfun.count_models_int (Families.disjointness 1));
        checki "D_2" 9 (Boolfun.count_models_int (Families.disjointness 2));
        checki "D_3" 27 (Boolfun.count_models_int (Families.disjointness 3)));
    case "parity counts" (fun () ->
        checki "parity 4" 8 (Boolfun.count_models_int (Families.parity 4));
        checki "parity 5" 16 (Boolfun.count_models_int (Families.parity 5)));
    case "majority/threshold" (fun () ->
        checki "maj 3" 4 (Boolfun.count_models_int (Families.majority 3));
        checki "thr 0" 16 (Boolfun.count_models_int (Families.threshold 0 4));
        checki "thr 5 of 4" 0 (Boolfun.count_models_int (Families.threshold 5 4)));
    case "chain implications" (fun () ->
        (* Models of x1->x2->...->xn are the monotone suffixes: n+1 models. *)
        checki "chain 4" 5 (Boolfun.count_models_int (Families.chain_implications 4)));
    case "equality function" (fun () ->
        checki "EQ_3" 8 (Boolfun.count_models_int (Families.equality 3)));
    case "isa params" (fun () ->
        Alcotest.(check (option (pair int int))) "n=5" (Some (1, 2)) (Families.isa_params 5);
        Alcotest.(check (option (pair int int))) "n=18" (Some (2, 4)) (Families.isa_params 18);
        Alcotest.(check (option (pair int int))) "n=261" (Some (5, 8)) (Families.isa_params 261);
        Alcotest.(check (option (pair int int))) "n=7" None (Families.isa_params 7));
    case "isa5 semantics" (fun () ->
        (* k=1, m=2: y1 picks block (z1,z2) or (z3,z4); the block's two
           bits point into z1..z4. *)
        let f = Families.isa 5 in
        checki "vars" 5 (Boolfun.num_vars f);
        (* y1=0: block (z1,z2)=(0,1) points to cell 2; z2=1 -> accept. *)
        checkb "case 1" true
          (Boolfun.eval f
             (a_of [ ("y01", false); ("z01", false); ("z02", true); ("z03", false); ("z04", false) ]));
        (* y1=0: (z1,z2)=(0,0) points to cell 1; z1=0 -> reject. *)
        checkb "case 2" false
          (Boolfun.eval f
             (a_of [ ("y01", false); ("z01", false); ("z02", false); ("z03", true); ("z04", true) ]));
        (* y1=1: block (z3,z4)=(1,1) points to cell 4; z4=1 -> accept. *)
        checkb "case 3" true
          (Boolfun.eval f
             (a_of [ ("y01", true); ("z01", false); ("z02", false); ("z03", true); ("z04", true) ])));
    case "h functions shape" (fun () ->
        let h0 = Families.h0 ~k:2 2 in
        checki "h0 vars" 6 (Boolfun.num_vars h0);
        let h1 = Families.hi ~k:2 ~i:1 2 in
        checki "h1 vars" 8 (Boolfun.num_vars h1);
        let h2 = Families.hk ~k:2 2 in
        checki "h2 vars" 6 (Boolfun.num_vars h2);
        Alcotest.check_raises "hi out of range"
          (Invalid_argument "Families.hi: need 1 <= i <= k-1") (fun () ->
            ignore (Families.hi ~k:2 ~i:2 2)));
    case "hidden weighted bit" (fun () ->
        let f = Families.hidden_weighted_bit 3 in
        checkb "000 -> 0" false
          (Boolfun.eval f (a_of [ ("x01", false); ("x02", false); ("x03", false) ]));
        (* weight 1, x1 = 1 -> accept *)
        checkb "100 -> 1" true
          (Boolfun.eval f (a_of [ ("x01", true); ("x02", false); ("x03", false) ]));
        (* weight 1 via x2: x1 = 0 -> reject *)
        checkb "010 -> 0" false
          (Boolfun.eval f (a_of [ ("x01", false); ("x02", true); ("x03", false) ])));
  ]

let suites = [ ("boolfun", boolfun_suite); ("families", families_suite) ]
