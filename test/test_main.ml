let () =
  Alcotest.run "ctwsdd"
    (Test_bigint.suites @ Test_graph.suites @ Test_boolfun.suites
   @ Test_circuit.suites @ Test_vtree.suites @ Test_bdd.suites
   @ Test_sdd.suites @ Test_nnf.suites @ Test_comm.suites @ Test_core.suites @ Test_pdb.suites @ Test_extensions.suites @ Test_depth.suites @ Test_misc.suites @ Test_obs.suites @ Test_flight.suites @ Test_refine.suites @ Test_dynamic.suites @ Test_pipeline.suites @ Test_budget.suites
   @ Test_cnf.suites @ Test_arena.suites @ Test_backend.suites)
