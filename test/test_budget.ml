(* The resource-governance layer: Budget semantics, the structured
   Ctwsdd_error contract, the pipeline degradation ladder, and the
   anytime behaviour of the vtree searches.

   The determinism cases pin the contract from vtree_search.mli: a
   node-cap budget yields the *same* degraded result whatever [domains]
   is, because caps are per-manager and the search rung splits its
   allowance by candidate count, not by worker count. *)

open Test_util

let reason =
  Alcotest.testable
    (fun ppf r -> Format.pp_print_string ppf (Budget.reason_to_string r))
    ( = )

let error =
  Alcotest.testable
    (fun ppf e -> Format.pp_print_string ppf (Ctwsdd_error.to_string e))
    ( = )

let all_reasons =
  [ Budget.Timeout; Budget.Node_limit; Budget.Memory_limit; Budget.Cancelled ]

(* A circuit whose per-strategy allocation counts are known and well
   separated: right-linear 61, balanced 54, treedec 181.  A node cap of
   60 therefore starves `Search (60/3 = 20 per candidate), trips
   `Treedec, and is satisfied by `Balanced. *)
let ladder_circuit () = Generators.band_cnf ~width:3 8
let ladder_cap = 60

let expired () =
  let b = Budget.create ~timeout:0.0 () in
  Unix.sleepf 0.01;
  b

let budget_suite =
  [
    case "create validates its arguments" (fun () ->
        Alcotest.check_raises "timeout"
          (Invalid_argument "Budget.create: negative timeout") (fun () ->
            ignore (Budget.create ~timeout:(-1.0) ()));
        Alcotest.check_raises "max_nodes"
          (Invalid_argument "Budget.create: negative max_nodes") (fun () ->
            ignore (Budget.create ~max_nodes:(-1) ()));
        Alcotest.check_raises "max_memory_words"
          (Invalid_argument "Budget.create: negative max_memory_words")
          (fun () -> ignore (Budget.create ~max_memory_words:(-1) ()));
        Alcotest.check_raises "poll_interval"
          (Invalid_argument "Budget.create: poll_interval must be positive")
          (fun () -> ignore (Budget.create ~poll_interval:0 ())));
    case "unlimited is inert" (fun () ->
        checkb "unlimited" true (Budget.is_unlimited Budget.unlimited);
        Budget.check Budget.unlimited;
        Budget.check_nodes Budget.unlimited max_int;
        for _ = 1 to 10_000 do
          Budget.poll Budget.unlimited
        done;
        checkb "split of unlimited" true
          (Budget.is_unlimited (Budget.split_nodes Budget.unlimited 3));
        checkb "created budgets are limited" false
          (Budget.is_unlimited (Budget.create ())));
    case "deadline trips as Timeout" (fun () ->
        let b = expired () in
        Alcotest.check_raises "check" (Budget.Exhausted Budget.Timeout)
          (fun () -> Budget.check b));
    case "node cap is exact" (fun () ->
        let b = Budget.create ~max_nodes:5 () in
        Budget.check_nodes b 5;
        Alcotest.check_raises "over" (Budget.Exhausted Budget.Node_limit)
          (fun () -> Budget.check_nodes b 6));
    case "cancellation token" (fun () ->
        let tok = Atomic.make false in
        let b = Budget.create ~cancel:tok () in
        Budget.check b;
        checkb "not yet" false (Budget.cancelled b);
        Budget.cancel_now b;
        checkb "token shared" true (Atomic.get tok);
        checkb "cancelled" true (Budget.cancelled b);
        Alcotest.check_raises "check" (Budget.Exhausted Budget.Cancelled)
          (fun () -> Budget.check b));
    case "memory watermark trips as Memory_limit" (fun () ->
        let b = Budget.create ~max_memory_words:1 () in
        Alcotest.check_raises "check" (Budget.Exhausted Budget.Memory_limit)
          (fun () -> Budget.check b));
    case "poll honours the interval" (fun () ->
        let b = Budget.create ~timeout:0.0 ~poll_interval:4 () in
        Unix.sleepf 0.01;
        Budget.poll b;
        Budget.poll b;
        Budget.poll b;
        Alcotest.check_raises "fourth poll" (Budget.Exhausted Budget.Timeout)
          (fun () -> Budget.poll b));
    case "split_nodes divides the cap" (fun () ->
        let b = Budget.create ~max_nodes:90 () in
        let s = Budget.split_nodes b 3 in
        Budget.check_nodes s 30;
        Alcotest.check_raises "share" (Budget.Exhausted Budget.Node_limit)
          (fun () -> Budget.check_nodes s 31);
        (* An uncapped budget splits to itself. *)
        let t = Budget.create ~timeout:3600.0 () in
        Budget.check_nodes (Budget.split_nodes t 7) 1_000_000);
  ]

let error_suite =
  [
    case "exit codes match the CLI contract" (fun () ->
        List.iter
          (fun (e, code) -> checki (Ctwsdd_error.to_string e) code
              (Ctwsdd_error.exit_code e))
          [
            (Ctwsdd_error.Invalid_input "x", 3);
            (Ctwsdd_error.Timeout, 4);
            (Ctwsdd_error.Node_limit, 5);
            (Ctwsdd_error.Memory_limit, 6);
            (Ctwsdd_error.Cancelled, 7);
          ]);
    case "guard/throw round-trips every constructor" (fun () ->
        List.iter
          (fun e ->
            Alcotest.(check (result unit error))
              (Ctwsdd_error.to_string e) (Error e)
              (Ctwsdd_error.guard (fun () -> Ctwsdd_error.throw e)))
          [
            Ctwsdd_error.Timeout;
            Ctwsdd_error.Node_limit;
            Ctwsdd_error.Memory_limit;
            Ctwsdd_error.Cancelled;
            Ctwsdd_error.Invalid_input "x";
          ];
        Alcotest.(check (result int error)) "ok" (Ok 42)
          (Ctwsdd_error.guard (fun () -> 42)));
    case "of_reason/reason round-trip" (fun () ->
        List.iter
          (fun r ->
            Alcotest.(check (option reason))
              (Budget.reason_to_string r) (Some r)
              (Ctwsdd_error.reason (Ctwsdd_error.of_reason r)))
          all_reasons;
        Alcotest.(check (option reason)) "invalid input" None
          (Ctwsdd_error.reason (Ctwsdd_error.Invalid_input "x")));
    case "guard converts normalized raising conventions" (fun () ->
        Alcotest.(check (result unit error)) "invalid_arg"
          (Error (Ctwsdd_error.Invalid_input "m"))
          (Ctwsdd_error.guard (fun () -> invalid_arg "m"));
        Alcotest.(check (result unit error)) "failwith"
          (Error (Ctwsdd_error.Invalid_input "m"))
          (Ctwsdd_error.guard (fun () -> failwith "m")));
    case "compile returns structured errors per trip kind" (fun () ->
        let c = ladder_circuit () in
        let check_err name want r =
          match r with
          | Error e -> Alcotest.check error name want e
          | Ok _ -> Alcotest.failf "%s: expected Error" name
        in
        check_err "constant circuit" (Ctwsdd_error.Invalid_input
          "Pipeline.compile: circuit has no variables")
          (Ctwsdd.compile (Circuit.of_string "(and true false)"));
        check_err "timeout" Ctwsdd_error.Timeout
          (Ctwsdd.compile ~budget:(expired ()) c);
        let b = Budget.create () in
        Budget.cancel_now b;
        check_err "cancelled" Ctwsdd_error.Cancelled
          (Ctwsdd.compile ~budget:b c);
        check_err "memory" Ctwsdd_error.Memory_limit
          (Ctwsdd.compile ~budget:(Budget.create ~max_memory_words:1 ()) c);
        (* A cap below even the right-linear compile exhausts the whole
           ladder. *)
        check_err "node limit" Ctwsdd_error.Node_limit
          (Ctwsdd.compile ~budget:(Budget.create ~max_nodes:2 ()) c));
    case "prob is result-typed and budget-aware" (fun () ->
        let q = Ucq.of_string "R(x), S(x,y)" in
        let db = Pdb.complete_rst 2 in
        (match Ctwsdd.prob q db with
        | Ok a ->
          check ratio "matches brute force" (Prob.brute q db)
            a.Prob.probability;
          checkb "not degraded" true (a.Prob.degraded = None)
        | Error e -> Alcotest.failf "unexpected error: %s"
            (Ctwsdd_error.to_string e));
        match Ctwsdd.prob ~budget:(expired ()) q db with
        | Error e -> Alcotest.check error "timeout" Ctwsdd_error.Timeout e
        | Ok _ -> Alcotest.fail "expected timeout");
  ]

let compile_degraded name ?(strategy = `Search) ?domains budget c =
  match Ctwsdd.compile ~budget ~vtree_strategy:strategy ?domains c with
  | Error e -> Alcotest.failf "%s: error %s" name (Ctwsdd_error.to_string e)
  | Ok r -> r

let ladder_suite =
  [
    case "starved search lands on balanced with a valid SDD" (fun () ->
        let c = ladder_circuit () in
        let reference =
          Boolfun.lift (Circuit.to_boolfun c) (Circuit.variables c)
        in
        let budget = Budget.create ~max_nodes:ladder_cap () in
        let r = compile_degraded "search" ~domains:1 budget c in
        checkb "landed on balanced" true (r.Pipeline.strategy = `Balanced);
        Alcotest.(check (option reason)) "degraded" (Some Budget.Node_limit)
          r.Pipeline.degraded;
        checkb "valid" true
          (Sdd.validate r.Pipeline.manager r.Pipeline.root = Ok ());
        checkb "same function" true
          (Boolfun.equal reference
             (Sdd.to_boolfun r.Pipeline.manager r.Pipeline.root));
        (* The returned manager is handed back free of the budget. *)
        checkb "budget released" true
          (Budget.is_unlimited (Sdd.budget r.Pipeline.manager)));
    case "requested treedec degrades to balanced too" (fun () ->
        let c = ladder_circuit () in
        let budget = Budget.create ~max_nodes:ladder_cap () in
        let r = compile_degraded "treedec" ~strategy:`Treedec budget c in
        checkb "landed on balanced" true (r.Pipeline.strategy = `Balanced);
        Alcotest.(check (option reason)) "degraded" (Some Budget.Node_limit)
          r.Pipeline.degraded);
    case "node-cap degradation is deterministic in domains" (fun () ->
        let c = ladder_circuit () in
        let run domains =
          compile_degraded "search"
            ~domains
            (Budget.create ~max_nodes:ladder_cap ())
            c
        in
        let r1 = run 1 and r3 = run 3 in
        checkb "same rung" true (r1.Pipeline.strategy = r3.Pipeline.strategy);
        Alcotest.(check (option reason)) "same reason" r1.Pipeline.degraded
          r3.Pipeline.degraded;
        checki "same size"
          (Sdd.size r1.Pipeline.manager r1.Pipeline.root)
          (Sdd.size r3.Pipeline.manager r3.Pipeline.root));
    case "budget trips surface as counters and degrade events" (fun () ->
        Obs.set_enabled true;
        Obs.reset ();
        Fun.protect
          ~finally:(fun () ->
            Obs.reset ();
            Obs.set_enabled false)
          (fun () ->
            let c = ladder_circuit () in
            let budget = Budget.create ~max_nodes:ladder_cap () in
            ignore (compile_degraded "search" ~domains:1 budget c);
            checkb "budget.trip.node_limit" true
              (Obs.counter_value "budget.trip.node_limit" > 0);
            (* `Search and `Treedec both stepped down. *)
            checkb "pipeline.degrade" true
              (Obs.counter_value "pipeline.degrade" >= 2)));
  ]

let anytime_suite =
  [
    case "minimize under a cancelled budget returns the start" (fun () ->
        let f = Boolfun.random ~seed:11 (small_vars 6) in
        let vt = Vtree.right_linear (Boolfun.variables f) in
        let b = Budget.create () in
        Budget.cancel_now b;
        let r = Vtree_search.minimize_sdd_size ~budget:b ~domains:1 f vt in
        Alcotest.(check (option reason)) "degraded" (Some Budget.Cancelled)
          r.Vtree_search.degraded;
        checki "no steps" 0 r.Vtree_search.steps;
        checki "start returned" (Vtree.fingerprint vt)
          (Vtree.fingerprint r.Vtree_search.best));
    case "apply_move rolls back the manager on a mid-edit trip" (fun () ->
        let c = ladder_circuit () in
        let m, r0 = Pipeline.compile_exn ~vtree_strategy:`Balanced c in
        let mc = Sdd.model_count m r0 in
        let root = ref r0 in
        let tripped = ref false in
        List.iter
          (fun (mv, _) ->
            if not !tripped then begin
              let fp = Vtree.fingerprint (Sdd.vtree m) in
              let count = Sdd.num_nodes_allocated m in
              Sdd.set_budget m (Budget.create ~max_nodes:count ());
              match Sdd.apply_move m mv !root with
              | fwd ->
                (* This edit fit under the cap; revert, try the next. *)
                Sdd.set_budget m Budget.unlimited;
                root := Sdd.apply_move m (Vtree.inverse_move mv) fwd
              | exception Budget.Exhausted r ->
                tripped := true;
                Sdd.set_budget m Budget.unlimited;
                Alcotest.(check reason) "reason" Budget.Node_limit r;
                checki "vtree restored" fp (Vtree.fingerprint (Sdd.vtree m));
                checki "count restored" count (Sdd.num_nodes_allocated m);
                checkb "valid" true (Sdd.validate m !root = Ok ());
                check bigint "same models" mc (Sdd.model_count m !root);
                checkb "usable" true
                  (Sdd.is_true m (Sdd.disjoin m !root (Sdd.negate m !root)))
            end)
          (Vtree.local_moves_with (Sdd.vtree m));
        checkb "some move tripped mid-edit" true !tripped);
    case "minimize_manager trip leaves the manager valid" (fun () ->
        let c = ladder_circuit () in
        let m, root = Pipeline.compile_exn ~vtree_strategy:`Right c in
        let mc = Sdd.model_count m root in
        let budget =
          Budget.create ~max_nodes:(Sdd.num_nodes_allocated m + 4) ()
        in
        let r = Vtree_search.minimize_manager ~budget m root in
        checkb "tripped" true (r.Vtree_search.degraded <> None);
        checkb "manager valid" true
          (Sdd.validate m r.Vtree_search.best = Ok ());
        check bigint "same models" mc (Sdd.model_count m r.Vtree_search.best);
        (* The manager remains usable after the trip. *)
        checkb "usable" true
          (Sdd.is_true m
             (Sdd.disjoin m r.Vtree_search.best
                (Sdd.negate m r.Vtree_search.best))));
    case "pre-cancelled minimize_manager returns the root untouched"
      (fun () ->
        let c = ladder_circuit () in
        let m, root = Pipeline.compile_exn ~vtree_strategy:`Right c in
        let b = Budget.create () in
        Budget.cancel_now b;
        let r = Vtree_search.minimize_manager ~budget:b m root in
        Alcotest.(check (option reason)) "degraded" (Some Budget.Cancelled)
          r.Vtree_search.degraded;
        checki "no steps" 0 r.Vtree_search.steps;
        checkb "root unchanged" true (Sdd.equal root r.Vtree_search.best));
    case "unbudgeted anytime agrees with the _exn variant" (fun () ->
        let f = Boolfun.random ~seed:12 (small_vars 6) in
        let vt = Vtree.right_linear (Boolfun.variables f) in
        let a = Vtree_search.minimize_sdd_size ~domains:1 f vt in
        checkb "complete" true (a.Vtree_search.degraded = None);
        let v, s = Vtree_search.minimize_sdd_size_exn ~domains:1 f vt in
        checki "same vtree" (Vtree.fingerprint v)
          (Vtree.fingerprint a.Vtree_search.best);
        checki "same score" s a.Vtree_search.score);
    case "node-capped minimize is deterministic in domains" (fun () ->
        let f = Boolfun.random ~seed:13 (small_vars 6) in
        let vt = Vtree.right_linear (Boolfun.variables f) in
        let run domains =
          Vtree_search.minimize_sdd_size
            ~budget:(Budget.create ~max_nodes:30 ())
            ~domains f vt
        in
        let r1 = run 1 and r3 = run 3 in
        checkb "capped run degraded" true (r1.Vtree_search.degraded <> None);
        Alcotest.(check (option reason)) "same reason"
          r1.Vtree_search.degraded r3.Vtree_search.degraded;
        checki "same best" (Vtree.fingerprint r1.Vtree_search.best)
          (Vtree.fingerprint r3.Vtree_search.best);
        checki "same score" r1.Vtree_search.score r3.Vtree_search.score;
        checki "same steps" r1.Vtree_search.steps r3.Vtree_search.steps);
    case "score-cache eviction preserves the search result" (fun () ->
        Obs.set_enabled true;
        Obs.reset ();
        Fun.protect
          ~finally:(fun () ->
            Obs.reset ();
            Obs.set_enabled false)
          (fun () ->
            let f = Boolfun.random ~seed:14 (small_vars 6) in
            let vt = Vtree.right_linear (Boolfun.variables f) in
            let tiny =
              Vtree_search.minimize_sdd_size ~cache_cap:2 ~domains:1 f vt
            in
            checkb "evicted" true
              (Obs.counter_value "vtree_search.score_cache_evictions" > 0);
            let full = Vtree_search.minimize_sdd_size ~domains:1 f vt in
            checki "same best" (Vtree.fingerprint full.Vtree_search.best)
              (Vtree.fingerprint tiny.Vtree_search.best);
            checki "same score" full.Vtree_search.score
              tiny.Vtree_search.score));
    case "exact_bb honours a cancelled global budget" (fun () ->
        let g = Ugraph.random_gnp ~seed:3 30 0.4 in
        let b = Budget.create () in
        Budget.cancel_now b;
        Alcotest.(check (option int)) "aborts" None
          (Treewidth.exact_bb ~budget:b g);
        Alcotest.(check (option int)) "sane when unlimited" (Some 1)
          (Treewidth.exact_bb (Ugraph.path_graph 6)));
  ]

let suites =
  [
    ("budget", budget_suite);
    ("budget-errors", error_suite);
    ("budget-ladder", ladder_suite);
    ("budget-anytime", anytime_suite);
  ]
